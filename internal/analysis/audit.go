package analysis

import (
	"encoding/json"
	"io"
	"sort"
)

// AuditSchema identifies the -audit output format.
const AuditSchema = "aegis-lint-audit/v1"

// auditReport is the -audit document: a machine-readable inventory of
// every //aegis:allow comment in the analyzed packages, so reviewers can
// budget suppressions and spot ones whose underlying finding has gone
// away (active=false means the allow no longer suppresses or prunes
// anything and the hygiene rule is flagging it as unused).
type auditReport struct {
	Schema  string       `json:"schema"`
	Root    string       `json:"root"`
	Ruleset string       `json:"ruleset"`
	Allows  []auditAllow `json:"allows"`
}

type auditAllow struct {
	Rule      string `json:"rule"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Reason    string `json:"reason"`
	Malformed bool   `json:"malformed,omitempty"`
	Active    bool   `json:"active"`
}

// writeAudit renders the allow inventory for the given per-package
// results. An allow is active when some rule consulted it this run —
// either to suppress a finding or to prune a call-graph edge. Records are
// deduplicated by position+rule (a dependency's allows are visible to
// several packages) and sorted by file, line, then rule.
func writeAudit(w io.Writer, results []PackageResult, root string) error {
	used := make(map[string]bool)
	for _, res := range results {
		for _, k := range res.UsedKeys {
			used[k] = true
		}
	}
	seen := make(map[string]bool)
	allows := []auditAllow{}
	for _, res := range results {
		for _, a := range res.Allows {
			k := a.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			allows = append(allows, auditAllow{
				Rule:      a.Rule,
				File:      relocatePath(a.Pos.Filename, root),
				Line:      a.Pos.Line,
				Reason:    a.Reason,
				Malformed: a.Malformed,
				Active:    used[k],
			})
		}
	}
	sort.Slice(allows, func(i, j int) bool {
		if allows[i].File != allows[j].File {
			return allows[i].File < allows[j].File
		}
		if allows[i].Line != allows[j].Line {
			return allows[i].Line < allows[j].Line
		}
		return allows[i].Rule < allows[j].Rule
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(auditReport{Schema: AuditSchema, Root: root, Ruleset: lintRulesetVersion, Allows: allows})
}
