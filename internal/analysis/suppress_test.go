package analysis

import (
	"strings"
	"testing"
)

// TestSuppressionHygiene exercises the //aegis:allow contract on the
// suppress fixture: valid same-line and line-above allows silence the
// detrand findings, while reason-less, unknown-rule, malformed, and
// unused allows are diagnostics themselves.
func TestSuppressionHygiene(t *testing.T) {
	pkgs := loadFixture(t, "suppress")
	diags := Analyze(pkgs, []*Rule{detrandRule})

	type want struct {
		line int
		rule string
		sub  string
	}
	wants := []want{
		// t2: allow without a reason does not suppress, and is itself flagged.
		{13, "detrand", "time.Now"},
		{13, SuppressionRule, "no reason"},
		// t3: unknown rule.
		{15, "detrand", "time.Now"},
		{15, SuppressionRule, "unknown rule \"clockrule\""},
		// t4: malformed (no parenthesised rule).
		{17, "detrand", "time.Now"},
		{17, SuppressionRule, "malformed suppression"},
		// unrelated: valid allow with nothing to suppress.
		{19, SuppressionRule, "unused suppression"},
	}

	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wants))
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if d.Pos.Line == w.line && d.Rule == w.rule && strings.Contains(d.Message, w.sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic on line %d (%s) matching %q", w.line, w.rule, w.sub)
		}
	}
}

// TestPartialRunKeepsForeignAllows checks that running a subset of rules
// does not flag allows belonging to rules that did not run: the suppress
// fixture's detrand allows must not be reported as unused when only
// maprange runs.
func TestPartialRunKeepsForeignAllows(t *testing.T) {
	pkgs := loadFixture(t, "suppress")
	diags := Analyze(pkgs, []*Rule{maprangeRule})
	for _, d := range diags {
		if strings.Contains(d.Message, "unused suppression") {
			t.Errorf("allow for a non-running rule flagged as unused: %s", d)
		}
	}
}
