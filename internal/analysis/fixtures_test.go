package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads the fixture tree for one rule (testdata/src/<name>)
// under the synthetic module path "fixture".
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, "fixture").LoadAll()
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	return pkgs
}

var wantMarker = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)
var wantQuoted = regexp.MustCompile(`"([^"]*)"`)

// collectWants scans every fixture file for `// want "substr" ...` markers
// and returns the expected diagnostic substrings keyed by file:line.
func collectWants(t *testing.T, pkgs []*Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			file := pkg.Fset.Position(f.Pos()).Filename
			if seen[file] {
				continue
			}
			seen[file] = true
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantMarker.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				key := fmt.Sprintf("%s:%d", file, i+1)
				for _, q := range wantQuoted.FindAllStringSubmatch(m[1], -1) {
					wants[key] = append(wants[key], q[1])
				}
			}
		}
	}
	return wants
}

// TestRuleFixtures runs every registered rule against its fixture tree and
// checks the produced diagnostics exactly match the want markers: each
// marker substring must be matched by a diagnostic on its line, and every
// diagnostic must be claimed by a marker. Suppressed sites (those carrying
// //aegis:allow comments in the fixtures) must therefore produce nothing.
func TestRuleFixtures(t *testing.T) {
	for _, rule := range AllRules() {
		t.Run(rule.Name, func(t *testing.T) {
			pkgs := loadFixture(t, rule.Name)
			diags := Analyze(pkgs, []*Rule{rule})
			wants := collectWants(t, pkgs)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want markers; every rule fixture must demonstrate at least one violation", rule.Name)
			}

			matched := make(map[string][]bool)
			for _, d := range diags {
				if d.Rule != rule.Name {
					t.Errorf("unexpected %s diagnostic in %s fixture: %s", d.Rule, rule.Name, d)
					continue
				}
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				subs := wants[key]
				hit := false
				for i, sub := range subs {
					if len(matched[key]) == 0 {
						matched[key] = make([]bool, len(subs))
					}
					if !matched[key][i] && strings.Contains(d.Message, sub) {
						matched[key][i] = true
						hit = true
						break
					}
				}
				if !hit {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, subs := range wants {
				for i, sub := range subs {
					if len(matched[key]) == 0 || !matched[key][i] {
						t.Errorf("missing diagnostic at %s matching %q", key, sub)
					}
				}
			}
		})
	}
}

// TestEveryRuleHasFixture pins the one-file-plus-one-fixture contract for
// extending the suite.
func TestEveryRuleHasFixture(t *testing.T) {
	for _, rule := range AllRules() {
		if _, err := os.Stat(filepath.Join("testdata", "src", rule.Name)); err != nil {
			t.Errorf("rule %s has no fixture directory: %v", rule.Name, err)
		}
	}
}
