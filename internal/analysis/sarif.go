package analysis

import (
	"encoding/json"
	"io"
	"sort"
)

// SARIF 2.1.0 output for GitHub code-scanning upload. Only the fields the
// code-scanning ingester requires are emitted — version, tool driver with
// per-rule metadata, and one result per diagnostic with a physical
// location whose URI is repository-relative — so the document stays small
// and deterministic (rules and results are sorted).

// SARIFVersion is the emitted SARIF schema version.
const SARIFVersion = "2.1.0"

const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifactLoc `json:"artifactLocation"`
	Region           sarifRegion      `json:"region"`
}

type sarifArtifactLoc struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a single-run SARIF 2.1.0 log. File
// URIs are made relative to root; rules lists every running rule (plus
// the suppression-hygiene pseudo-rule, which emits diagnostics too) so
// ruleIndex always resolves.
func WriteSARIF(w io.Writer, diags []Diagnostic, rules []*Rule, root string) error {
	ruleIDs := make([]string, 0, len(rules)+1)
	for _, r := range rules {
		ruleIDs = append(ruleIDs, r.Name)
	}
	ruleIDs = append(ruleIDs, SuppressionRule)
	sort.Strings(ruleIDs)

	docs := map[string]string{SuppressionRule: "suppression-comment hygiene: every //aegis:allow must be well-formed, reasoned, and still needed"}
	for _, r := range rules {
		docs[r.Name] = r.Doc
	}
	index := make(map[string]int, len(ruleIDs))
	sr := make([]sarifRule, 0, len(ruleIDs))
	for i, id := range ruleIDs {
		index[id] = i
		sr = append(sr, sarifRule{ID: id, ShortDescription: sarifMessage{Text: docs[id]}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Rule]
		if !ok {
			// A diagnostic from a rule outside the running set (possible
			// only through a caller bug) still serializes; append its rule
			// so ruleIndex stays valid.
			idx = len(sr)
			index[d.Rule] = idx
			sr = append(sr, sarifRule{ID: d.Rule, ShortDescription: sarifMessage{Text: d.Rule}})
		}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifactLoc{URI: relocatePath(d.Pos.Filename, root)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}

	doc := sarifLog{
		Schema:  sarifSchemaURI,
		Version: SARIFVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "aegis-lint",
				Version:        lintRulesetVersion,
				InformationURI: "https://github.com/repro/aegis",
				Rules:          sr,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
