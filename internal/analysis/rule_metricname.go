package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// metricnameRule keeps the telemetry name space stable: the Prometheus
// goldens, dashboards, and bench tooling all key on metric names, so every
// string literal passed to a telemetry counter/gauge/histogram constructor
// must be
//
//   - a compile-time constant (no dynamically assembled names),
//   - snake_case ([a-z0-9_], starting with a letter),
//   - suffixed by convention: counters end in _total; histograms end in a
//     unit (_seconds, _bytes, or _ns); gauges are instantaneous values and
//     carry no unit suffix but must not end in _total,
//   - registered in the canonical name registry: the exported Metric*
//     string constants in internal/telemetry/names.go. Adding a metric
//     means adding its name there first, which is what keeps the
//     exposition goldens reviewable.
//
// Call sites inside the telemetry package itself (the constructors
// forwarding the caller's name) are exempt.
var metricnameRule = &Rule{
	Name: "metricname",
	Doc:  "telemetry metric names are constant, snake_case, unit-suffixed, and registered",
	Run:  runMetricname,
}

// metricKinds maps telemetry constructor function/method names to the
// metric kind they build.
var metricKinds = map[string]string{
	"C": "counter", "Counter": "counter",
	"G": "gauge", "Gauge": "gauge",
	"H": "histogram", "Histogram": "histogram",
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// histogramUnits are the accepted histogram unit suffixes.
var histogramUnits = []string{"_seconds", "_bytes", "_ns"}

func runMetricname(pass *Pass) {
	if pkgPathHasSuffix(pass.Types, "internal/telemetry") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !pkgPathHasSuffix(fn.Pkg(), "internal/telemetry") {
				return true
			}
			kind, ok := metricKinds[fn.Name()]
			if !ok || len(call.Args) == 0 {
				return true
			}
			checkMetricName(pass, fn.Pkg(), kind, call.Args[0])
			return true
		})
	}
}

func checkMetricName(pass *Pass, telemetryPkg *types.Package, kind string, arg ast.Expr) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "%s name must be a compile-time constant string", kind)
		return
	}
	name := constant.StringVal(tv.Value)
	if !snakeCase.MatchString(name) {
		pass.Reportf(arg.Pos(), "%s name %q is not snake_case", kind, name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "counter name %q must end in _total", name)
		}
	case "histogram":
		if !hasAnySuffix(name, histogramUnits) {
			pass.Reportf(arg.Pos(), "histogram name %q must end in a unit suffix (%s)", name, strings.Join(histogramUnits, ", "))
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(), "gauge name %q must not end in _total; that suffix is reserved for counters", name)
		}
	}
	if !registeredMetricNames(telemetryPkg)[name] {
		pass.Reportf(arg.Pos(), "%s name %q is not registered; add a Metric* constant to internal/telemetry/names.go", kind, name)
	}
}

func hasAnySuffix(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}

// metricRegistryCache memoizes the registry per telemetry package object.
var metricRegistryCache = map[*types.Package]map[string]bool{}

// registeredMetricNames collects the values of the exported Metric* string
// constants declared in the telemetry package — the canonical metric name
// registry.
func registeredMetricNames(pkg *types.Package) map[string]bool {
	if set, ok := metricRegistryCache[pkg]; ok {
		return set
	}
	set := make(map[string]bool)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Metric") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		set[constant.StringVal(c.Val())] = true
	}
	metricRegistryCache[pkg] = set
	return set
}
