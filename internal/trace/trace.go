// Package trace implements HPC leakage-trace collection and dataset
// handling. A trace is the time series the paper's attacker records: for T
// sampling ticks, the per-tick counts of the monitored HPC events on the
// physical core backing the victim VM's vCPU. Datasets bundle labelled
// traces for attack training/validation and for defense evaluation.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
)

// Errors returned by the package.
var (
	ErrTooManyEvents = errors.New("trace: more events than counter registers")
	ErrEmptyTrace    = errors.New("trace: empty trace")
)

// Trace is one labelled leakage recording: Data[t][e] is the count of
// event e during tick t.
type Trace struct {
	Label string
	Data  [][]float64
}

// Ticks returns the trace length T.
func (tr Trace) Ticks() int { return len(tr.Data) }

// Events returns the channel count E.
func (tr Trace) Events() int {
	if len(tr.Data) == 0 {
		return 0
	}
	return len(tr.Data[0])
}

// Flatten returns the trace as one feature vector, channel-major
// ([e0t0, e0t1, ..., e1t0, ...]), the layout the attack models consume.
func (tr Trace) Flatten() []float64 {
	t, e := tr.Ticks(), tr.Events()
	out := make([]float64, 0, t*e)
	for ch := 0; ch < e; ch++ {
		for tick := 0; tick < t; tick++ {
			out = append(out, tr.Data[tick][ch])
		}
	}
	return out
}

// Channel extracts one event's time series.
func (tr Trace) Channel(e int) []float64 {
	out := make([]float64, tr.Ticks())
	for t := range tr.Data {
		out[t] = tr.Data[t][e]
	}
	return out
}

// Total returns the summed count of channel e over the whole trace.
func (tr Trace) Total(e int) float64 {
	var sum float64
	for t := range tr.Data {
		sum += tr.Data[t][e]
	}
	return sum
}

// Clone deep-copies the trace.
func (tr Trace) Clone() Trace {
	data := make([][]float64, len(tr.Data))
	for i, row := range tr.Data {
		data[i] = append([]float64(nil), row...)
	}
	return Trace{Label: tr.Label, Data: data}
}

// Collector samples the per-tick counts of up to four HPC events from one
// physical core, using RDPMC reads with a counter reset per tick — the
// host-side monitoring loop of the paper's attacks.
type Collector struct {
	pmu    *hpc.PMU
	events []*hpc.Event
}

// NewCollector attaches a collector to a core. At most
// hpc.NumCounterRegisters events can be monitored concurrently; noise may
// be nil for exact reads.
func NewCollector(core *microarch.Core, events []*hpc.Event, noise *rng.Source) (*Collector, error) {
	if len(events) == 0 {
		return nil, hpc.ErrNoEvents
	}
	if len(events) > hpc.NumCounterRegisters {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyEvents, len(events), hpc.NumCounterRegisters)
	}
	c := &Collector{
		pmu:    hpc.NewPMU(core, noise),
		events: append([]*hpc.Event(nil), events...),
	}
	for i, e := range events {
		if err := c.pmu.Program(i, e); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// EventNames returns the monitored event names in channel order.
func (c *Collector) EventNames() []string {
	names := make([]string, len(c.events))
	for i, e := range c.events {
		names[i] = e.Name
	}
	return names
}

// Sample reads the per-tick counts and re-arms the counters.
func (c *Collector) Sample() ([]float64, error) {
	return c.SampleInto(nil)
}

// SampleInto is Sample writing into a caller-supplied buffer: it reads the
// per-tick counts, re-arms the counters, and fills dst (reallocating only
// when its capacity is short). The returned slice has one value per
// monitored event, in channel order.
func (c *Collector) SampleInto(dst []float64) ([]float64, error) {
	if cap(dst) < len(c.events) {
		dst = make([]float64, len(c.events))
	}
	dst = dst[:len(c.events)]
	for i := range c.events {
		v, err := c.pmu.RDPMC(i)
		if err != nil {
			return nil, err
		}
		dst[i] = v
		if err := c.pmu.Reset(i); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// CollectDuring advances the world by ticks steps, sampling the collector
// at each tick boundary, and returns the recorded trace. All rows are
// carved from one slab so a recording costs two allocations instead of one
// per tick.
func CollectDuring(w *sev.World, c *Collector, ticks int, label string) (Trace, error) {
	if ticks < 0 {
		ticks = 0
	}
	e := len(c.events)
	data := make([][]float64, ticks)
	slab := make([]float64, ticks*e)
	for i := 0; i < ticks; i++ {
		w.Step()
		row := slab[i*e : (i+1)*e : (i+1)*e]
		if _, err := c.SampleInto(row); err != nil {
			return Trace{}, err
		}
		data[i] = row
	}
	return Trace{Label: label, Data: data}, nil
}

// Dataset is a labelled trace collection.
type Dataset struct {
	Traces     []Trace
	EventNames []string
}

// Add appends a trace.
func (d *Dataset) Add(tr Trace) { d.Traces = append(d.Traces, tr) }

// Len returns the trace count.
func (d *Dataset) Len() int { return len(d.Traces) }

// Classes returns the sorted distinct labels.
func (d *Dataset) Classes() []string {
	set := map[string]bool{}
	for _, tr := range d.Traces {
		set[tr.Label] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Split partitions the dataset into train/validation subsets with the given
// training fraction, shuffling with r. The split is stratified per class so
// every label appears in both subsets.
func (d *Dataset) Split(trainFrac float64, r *rng.Source) (train, val *Dataset) {
	train = &Dataset{EventNames: d.EventNames}
	val = &Dataset{EventNames: d.EventNames}
	byClass := map[string][]int{}
	for i, tr := range d.Traces {
		byClass[tr.Label] = append(byClass[tr.Label], i)
	}
	labels := make([]string, 0, len(byClass))
	for l := range byClass {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		idx := byClass[l]
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTrain := int(math.Round(trainFrac * float64(len(idx))))
		if nTrain < 1 && len(idx) > 1 {
			nTrain = 1
		}
		if nTrain >= len(idx) && len(idx) > 1 {
			nTrain = len(idx) - 1
		}
		for i, id := range idx {
			if i < nTrain {
				train.Add(d.Traces[id])
			} else {
				val.Add(d.Traces[id])
			}
		}
	}
	return train, val
}

// Normalizer holds per-channel affine scaling fitted on training data so
// the same transform applies to held-out traces.
type Normalizer struct {
	Mean []float64
	Std  []float64
}

// FitNormalizer computes per-channel mean/std over every tick of every
// trace in the dataset.
func FitNormalizer(d *Dataset) (*Normalizer, error) {
	if d.Len() == 0 || d.Traces[0].Events() == 0 {
		return nil, ErrEmptyTrace
	}
	e := d.Traces[0].Events()
	n := &Normalizer{Mean: make([]float64, e), Std: make([]float64, e)}
	var count float64
	for _, tr := range d.Traces {
		for _, row := range tr.Data {
			for ch, v := range row {
				n.Mean[ch] += v
			}
			count++
		}
	}
	if count == 0 {
		return nil, ErrEmptyTrace
	}
	for ch := range n.Mean {
		n.Mean[ch] /= count
	}
	for _, tr := range d.Traces {
		for _, row := range tr.Data {
			for ch, v := range row {
				dlt := v - n.Mean[ch]
				n.Std[ch] += dlt * dlt
			}
		}
	}
	for ch := range n.Std {
		n.Std[ch] = math.Sqrt(n.Std[ch] / count)
		if n.Std[ch] == 0 {
			n.Std[ch] = 1
		}
	}
	return n, nil
}

// Apply normalises a trace in place.
func (n *Normalizer) Apply(tr *Trace) {
	for t := range tr.Data {
		for ch := range tr.Data[t] {
			if ch < len(n.Mean) {
				tr.Data[t][ch] = (tr.Data[t][ch] - n.Mean[ch]) / n.Std[ch]
			}
		}
	}
}

// ApplyDataset normalises every trace of a dataset in place.
func (n *Normalizer) ApplyDataset(d *Dataset) {
	for i := range d.Traces {
		n.Apply(&d.Traces[i])
	}
}

// LabelIndex maps class names to dense indices for classifiers.
type LabelIndex struct {
	names []string
	index map[string]int
}

// NewLabelIndex builds an index over the sorted distinct labels.
func NewLabelIndex(labels []string) *LabelIndex {
	set := map[string]bool{}
	for _, l := range labels {
		set[l] = true
	}
	names := make([]string, 0, len(set))
	for l := range set {
		names = append(names, l)
	}
	sort.Strings(names)
	idx := &LabelIndex{names: names, index: make(map[string]int, len(names))}
	for i, n := range names {
		idx.index[n] = i
	}
	return idx
}

// Len returns the class count.
func (li *LabelIndex) Len() int { return len(li.names) }

// Index returns the dense index of a label (-1 if unknown).
func (li *LabelIndex) Index(label string) int {
	if i, ok := li.index[label]; ok {
		return i
	}
	return -1
}

// Name returns the label at a dense index.
func (li *LabelIndex) Name(i int) string {
	if i < 0 || i >= len(li.names) {
		return ""
	}
	return li.names[i]
}

// Names returns all labels in index order.
func (li *LabelIndex) Names() []string {
	return append([]string(nil), li.names...)
}
