package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Dataset serialization: leakage-trace corpora are expensive to collect
// (the paper's profiling runs take tens of hours), so the harness can
// persist them as JSON-lines files — a header record followed by one
// record per trace — and reload them for later attack training or defense
// evaluation.

// datasetHeader is the first record of a serialised dataset.
type datasetHeader struct {
	Version    int      `json:"version"`
	EventNames []string `json:"eventNames"`
	Traces     int      `json:"traces"`
}

// traceRecord is one serialised trace.
type traceRecord struct {
	Label string      `json:"label"`
	Data  [][]float64 `json:"data"`
}

// currentVersion is the serialisation format version.
const currentVersion = 1

// WriteTo serialises the dataset as JSON lines.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	enc := json.NewEncoder(bw)
	header := datasetHeader{
		Version:    currentVersion,
		EventNames: d.EventNames,
		Traces:     len(d.Traces),
	}
	if err := enc.Encode(header); err != nil {
		return written, fmt.Errorf("trace: encode header: %w", err)
	}
	for i, tr := range d.Traces {
		if err := enc.Encode(traceRecord{Label: tr.Label, Data: tr.Data}); err != nil {
			return written, fmt.Errorf("trace: encode trace %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// ReadDataset parses a dataset serialised by WriteTo.
func ReadDataset(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header datasetHeader
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	if header.Version != currentVersion {
		return nil, fmt.Errorf("trace: unsupported dataset version %d", header.Version)
	}
	ds := &Dataset{EventNames: header.EventNames}
	for i := 0; i < header.Traces; i++ {
		var rec traceRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("trace: decode trace %d: %w", i, err)
		}
		// Validate rectangular shape against the event channel count.
		for t, row := range rec.Data {
			if len(header.EventNames) > 0 && len(row) != len(header.EventNames) {
				return nil, fmt.Errorf("trace: trace %d tick %d has %d channels, want %d",
					i, t, len(row), len(header.EventNames))
			}
		}
		ds.Add(Trace{Label: rec.Label, Data: rec.Data})
	}
	return ds, nil
}

// SaveFile writes the dataset to path (truncating an existing file).
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := d.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDataset(f)
}
