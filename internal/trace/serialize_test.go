package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func roundTripDataset() *Dataset {
	d := &Dataset{EventNames: []string{"A", "B"}}
	d.Add(Trace{Label: "x", Data: [][]float64{{1, 2}, {3, 4}}})
	d.Add(Trace{Label: "y", Data: [][]float64{{5, 6}}})
	return d
}

func TestDatasetRoundTrip(t *testing.T) {
	d := roundTripDataset()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), d.Len())
	}
	if got.EventNames[1] != "B" {
		t.Errorf("event names = %v", got.EventNames)
	}
	if got.Traces[0].Label != "x" || got.Traces[0].Data[1][1] != 4 {
		t.Errorf("trace 0 = %+v", got.Traces[0])
	}
	if got.Traces[1].Data[0][0] != 5 {
		t.Errorf("trace 1 = %+v", got.Traces[1])
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	d := roundTripDataset()
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
}

func TestReadDatasetErrors(t *testing.T) {
	if _, err := ReadDataset(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadDataset(strings.NewReader(`{"version":99,"traces":0}` + "\n")); err == nil {
		t.Error("unknown version accepted")
	}
	// Header promises more traces than present.
	if _, err := ReadDataset(strings.NewReader(`{"version":1,"eventNames":["A"],"traces":2}` + "\n" +
		`{"label":"x","data":[[1]]}` + "\n")); err == nil {
		t.Error("truncated dataset accepted")
	}
	// Channel count mismatch.
	if _, err := ReadDataset(strings.NewReader(`{"version":1,"eventNames":["A","B"],"traces":1}` + "\n" +
		`{"label":"x","data":[[1]]}` + "\n")); err == nil {
		t.Error("channel mismatch accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}
