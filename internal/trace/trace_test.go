package trace

import (
	"errors"
	"math"
	"testing"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/workload"
)

func TestTraceAccessors(t *testing.T) {
	tr := Trace{Label: "x", Data: [][]float64{{1, 2}, {3, 4}, {5, 6}}}
	if tr.Ticks() != 3 || tr.Events() != 2 {
		t.Fatalf("dims = %dx%d", tr.Ticks(), tr.Events())
	}
	flat := tr.Flatten()
	want := []float64{1, 3, 5, 2, 4, 6} // channel-major
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flatten = %v, want %v", flat, want)
		}
	}
	ch := tr.Channel(1)
	if ch[0] != 2 || ch[2] != 6 {
		t.Errorf("channel = %v", ch)
	}
	if tr.Total(0) != 9 {
		t.Errorf("total = %v, want 9", tr.Total(0))
	}
}

func TestTraceClone(t *testing.T) {
	tr := Trace{Label: "x", Data: [][]float64{{1}}}
	cp := tr.Clone()
	cp.Data[0][0] = 99
	if tr.Data[0][0] != 1 {
		t.Error("clone shares backing data")
	}
}

func TestNewCollectorValidation(t *testing.T) {
	w := sev.NewWorld(sev.DefaultConfig(1))
	core, err := w.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCollector(core, nil, nil); !errors.Is(err, hpc.ErrNoEvents) {
		t.Errorf("no events error = %v", err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := make([]*hpc.Event, 5)
	for i := range events {
		events[i] = cat.Events[i]
	}
	if _, err := NewCollector(core, events, nil); !errors.Is(err, ErrTooManyEvents) {
		t.Errorf("too many events error = %v", err)
	}
}

// buildVictim launches a VM running a website load and returns the world,
// collector, and the runner.
func buildVictim(t *testing.T, seed uint64, site string) (*sev.World, *Collector, *workload.Runner) {
	t.Helper()
	w := sev.NewWorld(sev.DefaultConfig(seed))
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := workload.DefaultLibrary(1)
	r := rng.New(seed).Split("victim")
	runner := workload.NewRunner("browser", lib, r.Split("runner"))
	if err := vm.AddProcess(0, runner); err != nil {
		t.Fatal(err)
	}
	runner.Enqueue(workload.WebsiteJob(site, r.Split("load")))

	coreIdx, err := vm.PhysicalCore(0)
	if err != nil {
		t.Fatal(err)
	}
	core, err := w.Core(coreIdx)
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
	}
	col, err := NewCollector(core, events, r.Split("noise"))
	if err != nil {
		t.Fatal(err)
	}
	return w, col, runner
}

func TestCollectDuring(t *testing.T) {
	w, col, _ := buildVictim(t, 2, "google.com")
	tr, err := CollectDuring(w, col, 50, "google.com")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ticks() != 50 || tr.Events() != 4 {
		t.Fatalf("trace dims = %dx%d, want 50x4", tr.Ticks(), tr.Events())
	}
	if tr.Total(0) == 0 {
		t.Error("RETIRED_UOPS channel is all zero during a page load")
	}
	names := col.EventNames()
	if names[0] != "RETIRED_UOPS" || names[3] != "DATA_CACHE_REFILLS_FROM_SYSTEM" {
		t.Errorf("event names = %v", names)
	}
}

func TestTracesDistinguishSites(t *testing.T) {
	// Different sites must produce visibly different leakage totals on at
	// least one channel; identical-site repeats should be closer together.
	total := func(seed uint64, site string) float64 {
		w, col, _ := buildVictim(t, seed, site)
		tr, err := CollectDuring(w, col, 80, site)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Total(0)
	}
	g1 := total(10, "google.com")
	g2 := total(11, "google.com")
	y1 := total(10, "youtube.com")
	intra := math.Abs(g1 - g2)
	inter := math.Abs(g1 - y1)
	if inter <= intra {
		t.Logf("warning: inter-site gap %v <= intra-site gap %v on this channel", inter, intra)
	}
	if g1 == y1 {
		t.Error("two different sites produced identical totals")
	}
}

func testDataset() *Dataset {
	d := &Dataset{EventNames: []string{"A"}}
	for c := 0; c < 3; c++ {
		for i := 0; i < 10; i++ {
			d.Add(Trace{
				Label: string(rune('a' + c)),
				Data:  [][]float64{{float64(c*100 + i)}},
			})
		}
	}
	return d
}

func TestDatasetSplitStratified(t *testing.T) {
	d := testDataset()
	train, val := d.Split(0.7, rng.New(5))
	if train.Len()+val.Len() != d.Len() {
		t.Fatalf("split sizes %d+%d != %d", train.Len(), val.Len(), d.Len())
	}
	for _, sub := range []*Dataset{train, val} {
		if got := len(sub.Classes()); got != 3 {
			t.Errorf("subset has %d classes, want 3 (stratified)", got)
		}
	}
	if train.Len() != 21 {
		t.Errorf("train size = %d, want 21", train.Len())
	}
}

func TestDatasetClassesSorted(t *testing.T) {
	d := &Dataset{}
	d.Add(Trace{Label: "z"})
	d.Add(Trace{Label: "a"})
	d.Add(Trace{Label: "z"})
	cls := d.Classes()
	if len(cls) != 2 || cls[0] != "a" || cls[1] != "z" {
		t.Errorf("classes = %v", cls)
	}
}

func TestNormalizer(t *testing.T) {
	d := &Dataset{}
	d.Add(Trace{Label: "x", Data: [][]float64{{0, 10}, {2, 20}, {4, 30}}})
	n, err := FitNormalizer(d)
	if err != nil {
		t.Fatal(err)
	}
	if n.Mean[0] != 2 || n.Mean[1] != 20 {
		t.Errorf("means = %v", n.Mean)
	}
	n.ApplyDataset(d)
	// After normalisation, channel means are 0.
	var sum0, sum1 float64
	for _, row := range d.Traces[0].Data {
		sum0 += row[0]
		sum1 += row[1]
	}
	if math.Abs(sum0) > 1e-9 || math.Abs(sum1) > 1e-9 {
		t.Errorf("normalized sums = %v, %v", sum0, sum1)
	}
}

func TestNormalizerConstantChannel(t *testing.T) {
	d := &Dataset{}
	d.Add(Trace{Label: "x", Data: [][]float64{{5}, {5}}})
	n, err := FitNormalizer(d)
	if err != nil {
		t.Fatal(err)
	}
	if n.Std[0] != 1 {
		t.Errorf("constant channel std = %v, want fallback 1", n.Std[0])
	}
}

func TestFitNormalizerEmpty(t *testing.T) {
	if _, err := FitNormalizer(&Dataset{}); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("empty dataset error = %v", err)
	}
}

func TestLabelIndex(t *testing.T) {
	li := NewLabelIndex([]string{"b", "a", "b", "c"})
	if li.Len() != 3 {
		t.Fatalf("len = %d", li.Len())
	}
	if li.Index("a") != 0 || li.Index("c") != 2 {
		t.Errorf("indices wrong: a=%d c=%d", li.Index("a"), li.Index("c"))
	}
	if li.Index("zzz") != -1 {
		t.Error("unknown label index != -1")
	}
	if li.Name(1) != "b" {
		t.Errorf("Name(1) = %q", li.Name(1))
	}
	if li.Name(9) != "" {
		t.Error("out of range name not empty")
	}
}
