package attack

import (
	"errors"
	"testing"

	"github.com/repro/aegis/internal/fuzzer"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/trace"
	"github.com/repro/aegis/internal/workload"
)

func wfaScenario(seed uint64) *Scenario {
	return &Scenario{
		App: &workload.WebsiteApp{Sites: []string{
			"google.com", "youtube.com", "facebook.com", "netflix.com", "github.com",
		}},
		Catalog:         hpc.NewAMDEpyc7252Catalog(1),
		TracesPerSecret: 10,
		TraceTicks:      100,
		Seed:            seed,
	}
}

func TestCollectDataset(t *testing.T) {
	sc := wfaScenario(1)
	sc.TracesPerSecret = 2
	sc.TraceTicks = 40
	ds, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 10 {
		t.Fatalf("dataset size = %d, want 10", ds.Len())
	}
	if got := len(ds.Classes()); got != 5 {
		t.Errorf("classes = %d, want 5", got)
	}
	if ds.Traces[0].Ticks() != 40 || ds.Traces[0].Events() != 4 {
		t.Errorf("trace dims = %dx%d", ds.Traces[0].Ticks(), ds.Traces[0].Events())
	}
}

func TestCollectErrors(t *testing.T) {
	sc := wfaScenario(2)
	sc.EventNames = []string{"NO_SUCH_EVENT"}
	if _, err := sc.Collect(nil); err == nil {
		t.Error("unknown event accepted")
	}
	sc2 := wfaScenario(2)
	sc2.EventNames = []string{}
	if _, err := sc2.Collect(nil); !errors.Is(err, ErrNoEvents) {
		t.Errorf("no events error = %v", err)
	}
}

func TestWFACleanAttackSucceeds(t *testing.T) {
	// The headline of paper §III-C: with clean traces, website
	// fingerprinting is highly accurate.
	sc := wfaScenario(3)
	ds, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	clf, stats, err := TrainClassifier(ds, DefaultTrainConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1]
	if final.ValAcc < 0.7 {
		t.Errorf("clean WFA val accuracy = %v, want > 0.7 (paper: 0.99)", final.ValAcc)
	}
	// Training curve shape: accuracy improves from the first epoch.
	if final.TrainAcc <= stats[0].TrainAcc {
		t.Errorf("training accuracy did not improve: %v -> %v", stats[0].TrainAcc, final.TrainAcc)
	}
	if clf.Classes() != 5 {
		t.Errorf("classes = %d", clf.Classes())
	}
}

func TestKSACleanAttack(t *testing.T) {
	sc := &Scenario{
		App:             &workload.KeystrokeApp{WindowTicks: 100, MaxKeys: 4},
		Catalog:         hpc.NewAMDEpyc7252Catalog(1),
		TracesPerSecret: 12,
		TraceTicks:      100,
		Seed:            4,
	}
	ds, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := TrainClassifier(ds, DefaultTrainConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1]
	// 4 key-count classes; random guess = 0.25.
	if final.ValAcc < 0.5 {
		t.Errorf("clean KSA val accuracy = %v, want > 0.5 (paper: 0.95)", final.ValAcc)
	}
}

func testDefense(t *testing.T, epsilon float64) DefenseFactory {
	t.Helper()
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	fcfg := fuzzer.DefaultConfig(1)
	fcfg.CandidatesPerEvent = 150
	f, err := fuzzer.New(legal, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
	}
	res, err := f.Fuzz(events)
	if err != nil {
		t.Fatal(err)
	}
	cover, err := f.MinimalCover(res, events)
	if err != nil {
		t.Fatal(err)
	}
	seg := fuzzer.StackSegment(cover)
	ref := cat.MustByName("RETIRED_UOPS")
	return func(seed uint64) (*obfuscator.Obfuscator, error) {
		mech, err := obfuscator.NewLaplaceMechanism(epsilon, 1500, rng.New(seed).Split("mech"))
		if err != nil {
			return nil, err
		}
		return obfuscator.New(obfuscator.Config{
			Mechanism: mech,
			Segment:   seg,
			RefEvent:  ref,
			ClipBound: 20000,
			Seed:      seed,
		})
	}
}

func TestDefenseReducesAttackAccuracy(t *testing.T) {
	// Fig. 9a shape at one operating point: a clean-trained attacker's
	// accuracy collapses on defended traces.
	sc := wfaScenario(5)
	clean, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	clf, _, err := TrainClassifier(clean, DefaultTrainConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	cleanAcc, err := clf.Evaluate(clean)
	if err != nil {
		t.Fatal(err)
	}

	defended := wfaScenario(6)
	defended.TracesPerSecret = 4
	ds, err := defended.Collect(testDefense(t, 0.125))
	if err != nil {
		t.Fatal(err)
	}
	defAcc, err := clf.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if defAcc >= cleanAcc {
		t.Errorf("defense did not reduce accuracy: clean %v, defended %v", cleanAcc, defAcc)
	}
	if defAcc > 0.6 {
		t.Errorf("defended accuracy = %v, want a collapse toward random guess (0.2)", defAcc)
	}
}

func TestMEACleanAttack(t *testing.T) {
	zoo := workload.ModelZoo()
	app := &workload.DNNApp{Models: []workload.ModelArch{zoo[0], zoo[10], zoo[20]}}
	sc := &Scenario{
		App:             app,
		Catalog:         hpc.NewAMDEpyc7252Catalog(1),
		TracesPerSecret: 8,
		TraceTicks:      120,
		Seed:            7,
	}
	ds, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSequenceTrainConfig(7)
	cfg.Epochs = 8
	cfg.Hidden = 16
	atk, stats, err := TrainSequenceAttack(ds, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 8 {
		t.Fatalf("epochs recorded = %d", len(stats))
	}
	acc, err := atk.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	// A blind predictor that guesses nothing scores 0; layer-sequence
	// accuracy must show real structure is being recovered.
	if acc < 0.3 {
		t.Errorf("MEA accuracy = %v, want > 0.3 at test scale (paper: 0.92 at full scale)", acc)
	}
	// Prediction returns layer types in the external alphabet.
	pred, err := atk.Predict(ds.Traces[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range pred {
		if l < workload.LayerConv || l > workload.LayerSoftmax {
			t.Errorf("predicted layer %v out of range", l)
		}
	}
}

func TestTrainClassifierErrors(t *testing.T) {
	if _, _, err := TrainClassifier(nil, DefaultTrainConfig(1)); !errors.Is(err, ErrNoDataset) {
		t.Errorf("nil dataset error = %v", err)
	}
}

func TestTrainSequenceAttackErrors(t *testing.T) {
	if _, _, err := TrainSequenceAttack(nil, &workload.DNNApp{}, DefaultSequenceTrainConfig(1)); !errors.Is(err, ErrNoDataset) {
		t.Errorf("nil dataset error = %v", err)
	}
}

func TestWFAWithCNNModel(t *testing.T) {
	// The paper's actual WFA model is a CNN (§III-C); verify the CNN path
	// also learns the clean traces.
	sc := wfaScenario(20)
	sc.TracesPerSecret = 8
	ds, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig(20)
	cfg.Model = ModelCNN
	cfg.Epochs = 18
	clf, stats, err := TrainClassifier(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1]
	// 5 classes, chance 20%.
	if final.ValAcc < 0.5 {
		t.Errorf("CNN WFA val accuracy = %v, want > 0.5", final.ValAcc)
	}
	acc, err := clf.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Errorf("CNN evaluate accuracy = %v", acc)
	}
}

func TestCryptoKeyAttackAndDefense(t *testing.T) {
	// Future-work extension (paper §X): stealing cryptographic keys. The
	// square-and-multiply workload leaks the exponent pattern through the
	// HPC trace; Aegis suppresses it.
	app := &workload.CryptoApp{NumKeys: 6}
	sc := &Scenario{
		App:             app,
		Catalog:         hpc.NewAMDEpyc7252Catalog(1),
		TracesPerSecret: 10,
		TraceTicks:      90,
		Seed:            33,
	}
	ds, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig(33)
	cfg.Epochs = 20
	clf, stats, err := TrainClassifier(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1]
	// 6 keys, chance ~17%.
	if final.ValAcc < 0.5 {
		t.Errorf("clean key-recovery val accuracy = %v, want > 0.5", final.ValAcc)
	}

	defended := &Scenario{
		App:             app,
		Catalog:         sc.Catalog,
		TracesPerSecret: 4,
		TraceTicks:      90,
		Seed:            44,
	}
	dds, err := defended.Collect(testDefense(t, 0.125))
	if err != nil {
		t.Fatal(err)
	}
	defAcc, err := clf.Evaluate(dds)
	if err != nil {
		t.Fatal(err)
	}
	cleanAcc, err := clf.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if defAcc >= cleanAcc {
		t.Errorf("defense did not reduce key recovery: clean %v, defended %v", cleanAcc, defAcc)
	}
}

func TestTemplateAttackBaseline(t *testing.T) {
	sc := wfaScenario(50)
	sc.TracesPerSecret = 8
	ds, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := TrainTemplateAttack(ds)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := atk.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	// 5 classes, chance 20%; the Gaussian templates on clean traces must
	// be far better than chance.
	if acc < 0.6 {
		t.Errorf("template attack accuracy = %v, want > 0.6", acc)
	}
	// Defense also defeats the template attack.
	defended := wfaScenario(51)
	defended.TracesPerSecret = 4
	dds, err := defended.Collect(testDefense(t, 0.125))
	if err != nil {
		t.Fatal(err)
	}
	defAcc, err := atk.Evaluate(dds)
	if err != nil {
		t.Fatal(err)
	}
	if defAcc >= acc {
		t.Errorf("defense did not reduce template attack: %v -> %v", acc, defAcc)
	}
	if _, err := TrainTemplateAttack(nil); !errors.Is(err, ErrNoDataset) {
		t.Errorf("nil dataset error = %v", err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	sc := wfaScenario(60)
	sc.TracesPerSecret = 6
	ds, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	clf, _, err := TrainClassifier(ds, DefaultTrainConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	cm, names, err := clf.ConfusionMatrix(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm) != 5 || len(names) != 5 {
		t.Fatalf("dims = %dx%d", len(cm), len(names))
	}
	total := 0
	diag := 0
	for i := range cm {
		for j := range cm[i] {
			total += cm[i][j]
			if i == j {
				diag += cm[i][j]
			}
		}
	}
	if total != ds.Len() {
		t.Errorf("confusion total = %d, want %d", total, ds.Len())
	}
	if float64(diag)/float64(total) < 0.6 {
		t.Errorf("diagonal mass %d/%d too low for clean traces", diag, total)
	}
	if _, _, err := clf.ConfusionMatrix(nil); !errors.Is(err, ErrNoDataset) {
		t.Errorf("nil dataset error = %v", err)
	}
}

func TestWFAOnIntelPlatform(t *testing.T) {
	// Aegis is "unified" across processors (paper §IV); the same attack
	// and collection stack works against the Intel catalog and platform.
	world := sev.DefaultConfig(70)
	world.Processor = "Intel Xeon E5-1650"
	sc := &Scenario{
		App: &workload.WebsiteApp{Sites: []string{
			"google.com", "youtube.com", "github.com",
		}},
		Catalog:         hpc.NewIntelXeonE51650Catalog(1),
		TracesPerSecret: 8,
		TraceTicks:      80,
		Seed:            70,
		World:           world,
	}
	ds, err := sc.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig(70)
	cfg.Epochs = 15
	_, stats, err := TrainClassifier(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if final := stats[len(stats)-1]; final.ValAcc < 0.6 {
		t.Errorf("intel-platform WFA val accuracy = %v, want > 0.6", final.ValAcc)
	}
}

func TestMonitoringWrongCoreSeesNoSignal(t *testing.T) {
	// Threat-model sanity: a host monitor on a core NOT backing the
	// victim's vCPU observes (almost) nothing — the side channel is per
	// physical core.
	sc := wfaScenario(71)
	sc.TracesPerSecret = 1
	sc.TraceTicks = 60
	// Collect normally first to know the victim core's signal level.
	tr, err := sc.CollectOne("google.com", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	victimTotal := tr.Total(0)
	if victimTotal < 1000 {
		t.Fatalf("victim trace total = %v, workload too quiet", victimTotal)
	}

	// Now monitor an unrelated core in a fresh world with the same load.
	world := sev.NewWorld(sev.DefaultConfig(71))
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	runner := workload.NewRunner("browser", workload.DefaultLibrary(1), rng.New(71).Split("r"))
	runner.Enqueue(workload.WebsiteJob("google.com", rng.New(71).Split("l")))
	if err := vm.AddProcess(0, runner); err != nil {
		t.Fatal(err)
	}
	victimCore, err := vm.PhysicalCore(0)
	if err != nil {
		t.Fatal(err)
	}
	otherIdx := (victimCore + 1) % world.Cores()
	otherCore, err := world.Core(otherIdx)
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	col, err := trace.NewCollector(otherCore, []*hpc.Event{cat.MustByName("RETIRED_UOPS")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := trace.CollectDuring(world, col, 60, "google.com")
	if err != nil {
		t.Fatal(err)
	}
	if wrongTotal := wrong.Total(0); wrongTotal > victimTotal/100 {
		t.Errorf("wrong-core monitor saw %v counts vs victim %v", wrongTotal, victimTotal)
	}
}
