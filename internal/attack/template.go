package attack

import (
	"github.com/repro/aegis/internal/ml"
	"github.com/repro/aegis/internal/trace"
)

// TemplateAttack is the classical side-channel template attack baseline:
// per-class Gaussian templates over compact per-channel summary features
// (total, mean, max, burstiness). It trains in one pass with no SGD, which
// makes it the cheapest attacker in the harness; the paper's machine-
// learning attackers strictly dominate it, and the defense must beat both.
type TemplateAttack struct {
	model  *ml.TemplateClassifier
	labels *trace.LabelIndex
	norm   *trace.Normalizer
}

// templateFeatures reduces a normalised trace to 4 summary features per
// channel.
func templateFeatures(tr trace.Trace, norm *trace.Normalizer) []float64 {
	cp := tr.Clone()
	norm.Apply(&cp)
	out := make([]float64, 0, cp.Events()*4)
	for ch := 0; ch < cp.Events(); ch++ {
		var sum, maxV, bursts float64
		n := float64(cp.Ticks())
		for t := range cp.Data {
			v := cp.Data[t][ch]
			sum += v
			if v > maxV {
				maxV = v
			}
			if v > 2 {
				bursts++
			}
		}
		out = append(out, sum, sum/n, maxV, bursts)
	}
	return out
}

// TrainTemplateAttack fits the template attack on a labelled dataset.
func TrainTemplateAttack(ds *trace.Dataset) (*TemplateAttack, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, ErrNoDataset
	}
	norm, err := trace.FitNormalizer(ds)
	if err != nil {
		return nil, err
	}
	labels := trace.NewLabelIndex(ds.Classes())
	xs := make([][]float64, 0, ds.Len())
	ys := make([]int, 0, ds.Len())
	for _, tr := range ds.Traces {
		xs = append(xs, templateFeatures(tr, norm))
		ys = append(ys, labels.Index(tr.Label))
	}
	model, err := ml.FitTemplate(xs, ys, labels.Len())
	if err != nil {
		return nil, err
	}
	return &TemplateAttack{model: model, labels: labels, norm: norm}, nil
}

// PredictIndex returns the maximum-likelihood secret for a trace as its
// dense label index.
func (a *TemplateAttack) PredictIndex(tr trace.Trace) (int, error) {
	return a.model.Predict(templateFeatures(tr, a.norm))
}

// Predict returns the maximum-likelihood secret for a trace.
func (a *TemplateAttack) Predict(tr trace.Trace) (string, error) {
	idx, err := a.PredictIndex(tr)
	if err != nil {
		return "", err
	}
	return a.labels.Name(idx), nil
}

// Evaluate returns the attack accuracy over a labelled dataset.
func (a *TemplateAttack) Evaluate(ds *trace.Dataset) (float64, error) {
	if ds == nil || ds.Len() == 0 {
		return 0, ErrNoDataset
	}
	correct := 0
	for _, tr := range ds.Traces {
		pred, err := a.PredictIndex(tr)
		if err != nil {
			return 0, err
		}
		if pred == a.labels.Index(tr.Label) {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}
