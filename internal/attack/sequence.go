package attack

import (
	"fmt"

	"github.com/repro/aegis/internal/ml"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/trace"
	"github.com/repro/aegis/internal/workload"
)

// SequenceAttack is the model extraction attack (paper §III-E): a
// bidirectional GRU with a CTC decoder that transcribes the per-tick HPC
// feature sequence into the victim DNN's layer-type sequence.
type SequenceAttack struct {
	model *ml.BiGRUCTC
	norm  *trace.Normalizer
	app   *workload.DNNApp
	// BeamWidth for decoding; <= 1 means greedy.
	BeamWidth int
}

// SequenceEpochStats records one MEA training epoch (Fig. 1c curve).
type SequenceEpochStats struct {
	Epoch     int
	TrainLoss float64
	// ValAcc is the mean layer-matching accuracy on the validation set.
	ValAcc float64
}

// SequenceTrainConfig tunes MEA training.
type SequenceTrainConfig struct {
	Epochs      int
	ValFraction float64
	Hidden      int
	LR          float64
	BeamWidth   int
	Seed        uint64
}

// DefaultSequenceTrainConfig returns the evaluation defaults.
func DefaultSequenceTrainConfig(seed uint64) SequenceTrainConfig {
	return SequenceTrainConfig{
		Epochs:      12,
		ValFraction: 0.3,
		Hidden:      24,
		LR:          0.02,
		BeamWidth:   4,
		Seed:        seed,
	}
}

// layerLabel converts a model's layer sequence into the CTC alphabet.
func layerLabel(app *workload.DNNApp, secret string) ([]int, error) {
	arch, err := app.Arch(secret)
	if err != nil {
		return nil, err
	}
	seq := arch.LayerSequence()
	out := make([]int, len(seq))
	for i, l := range seq {
		out[i] = int(l) - 1 // LayerType starts at 1
	}
	return out, nil
}

// sequenceFeatures normalises a trace into per-tick feature rows.
func sequenceFeatures(tr trace.Trace, norm *trace.Normalizer) [][]float64 {
	cp := tr.Clone()
	norm.Apply(&cp)
	return cp.Data
}

// TrainSequenceAttack fits the MEA model on a labelled dataset of DNN
// inference traces and returns per-epoch statistics.
func TrainSequenceAttack(ds *trace.Dataset, app *workload.DNNApp, cfg SequenceTrainConfig) (*SequenceAttack, []SequenceEpochStats, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, nil, ErrNoDataset
	}
	if app == nil {
		return nil, nil, fmt.Errorf("attack: nil DNN app")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 12
	}
	if cfg.ValFraction <= 0 || cfg.ValFraction >= 1 {
		cfg.ValFraction = 0.3
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 24
	}
	if cfg.BeamWidth <= 0 {
		cfg.BeamWidth = 4
	}
	r := rng.New(cfg.Seed).Split("seq-attack")
	train, val := ds.Split(1-cfg.ValFraction, r)
	norm, err := trace.FitNormalizer(train)
	if err != nil {
		return nil, nil, err
	}

	classes := len(workload.AllLayerTypes())
	gruCfg := ml.DefaultGRUConfig(train.Traces[0].Events(), classes)
	gruCfg.Hidden = cfg.Hidden
	if cfg.LR > 0 {
		gruCfg.LR = cfg.LR
	}
	gruCfg.Seed = cfg.Seed + 1
	model, err := ml.NewBiGRUCTC(gruCfg)
	if err != nil {
		return nil, nil, err
	}
	atk := &SequenceAttack{model: model, norm: norm, app: app, BeamWidth: cfg.BeamWidth}

	// Pre-resolve labels and drop traces whose label cannot align with the
	// trace length (CTC requires T >= L).
	type example struct {
		xs    [][]float64
		label []int
	}
	build := func(sub *trace.Dataset) ([]example, error) {
		var out []example
		for _, tr := range sub.Traces {
			label, err := layerLabel(app, tr.Label)
			if err != nil {
				return nil, err
			}
			if tr.Ticks() < len(label) {
				return nil, fmt.Errorf("attack: trace for %s has %d ticks < %d layers",
					tr.Label, tr.Ticks(), len(label))
			}
			out = append(out, example{xs: sequenceFeatures(tr, norm), label: label})
		}
		return out, nil
	}
	trainEx, err := build(train)
	if err != nil {
		return nil, nil, err
	}

	stats := make([]SequenceEpochStats, 0, cfg.Epochs)
	order := make([]int, len(trainEx))
	for i := range order {
		order[i] = i
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumLoss float64
		for _, idx := range order {
			loss, err := model.TrainStep(trainEx[idx].xs, trainEx[idx].label)
			if err != nil {
				return nil, nil, err
			}
			sumLoss += loss
		}
		st := SequenceEpochStats{Epoch: ep + 1, TrainLoss: sumLoss / float64(len(trainEx))}
		if val.Len() > 0 {
			acc, err := atk.Evaluate(val)
			if err != nil {
				return nil, nil, err
			}
			st.ValAcc = acc
		}
		stats = append(stats, st)
	}
	return atk, stats, nil
}

// Predict transcribes one trace into a layer-type sequence.
func (a *SequenceAttack) Predict(tr trace.Trace) ([]workload.LayerType, error) {
	xs := sequenceFeatures(tr, a.norm)
	var raw []int
	var err error
	if a.BeamWidth > 1 {
		raw, err = a.model.DecodeBeam(xs, a.BeamWidth)
	} else {
		raw, err = a.model.Decode(xs)
	}
	if err != nil {
		return nil, err
	}
	out := make([]workload.LayerType, len(raw))
	for i, v := range raw {
		out[i] = workload.LayerType(v + 1)
	}
	return out, nil
}

// Evaluate returns the mean layer-matching accuracy over a dataset (the
// paper's MEA metric: statistics of matched layers between prediction and
// label sequences).
func (a *SequenceAttack) Evaluate(ds *trace.Dataset) (float64, error) {
	if ds == nil || ds.Len() == 0 {
		return 0, ErrNoDataset
	}
	var preds, labels [][]int
	for _, tr := range ds.Traces {
		label, err := layerLabel(a.app, tr.Label)
		if err != nil {
			return 0, err
		}
		xs := sequenceFeatures(tr, a.norm)
		var raw []int
		if a.BeamWidth > 1 {
			raw, err = a.model.DecodeBeam(xs, a.BeamWidth)
		} else {
			raw, err = a.model.Decode(xs)
		}
		if err != nil {
			return 0, err
		}
		preds = append(preds, raw)
		labels = append(labels, label)
	}
	return ml.MeanSequenceAccuracy(preds, labels), nil
}
