// Package attack implements the paper's three HPC side-channel attacks
// (§III) against the simulated SEV world: website fingerprinting (WFA),
// keystroke sniffing (KSA) and model extraction (MEA). Each attack follows
// the paper's abstraction: collect labelled leakage traces X from a
// template VM, train f_θ : X → Y, then predict secrets of the victim VM
// from its traces. The same harness collects *defended* traces by pinning
// an Aegis obfuscator to the victim's vCPU, which drives the defense
// evaluation (Fig. 9).
package attack

import (
	"errors"
	"fmt"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/ml"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/trace"
	"github.com/repro/aegis/internal/workload"
)

// Errors returned by the package.
var (
	ErrNoDataset = errors.New("attack: empty dataset")
	ErrNoEvents  = errors.New("attack: scenario has no monitored events")
)

// DefaultEventNames are the four monitored events of the paper's attacks
// (§III-B), selected by the profiler's ranking.
func DefaultEventNames() []string {
	return []string{
		"RETIRED_UOPS",
		"LS_DISPATCH",
		"MAB_ALLOCATION_BY_PIPE",
		"DATA_CACHE_REFILLS_FROM_SYSTEM",
	}
}

// DefenseFactory builds a fresh obfuscator per victim run (mechanism state
// is per-deployment). The seed decorrelates noise across runs.
type DefenseFactory func(seed uint64) (*obfuscator.Obfuscator, error)

// Scenario describes one attack data-collection campaign.
type Scenario struct {
	// App is the victim application.
	App workload.App
	// Catalog is the processor's event catalog.
	Catalog *hpc.Catalog
	// EventNames are the monitored events (max 4); nil uses the default.
	EventNames []string
	// TracesPerSecret is the number of recordings per secret.
	TracesPerSecret int
	// TraceTicks is the length of each recording (the paper samples 3 s
	// at 1 ms; the simulator default scales to 300 ticks).
	TraceTicks int
	// Seed drives all stochastic behaviour of the campaign.
	Seed uint64
	// World configures the host machine; zero value uses the AMD testbed.
	World sev.Config
	// DisableMonitorNoise turns off the host-side measurement noise that
	// is otherwise always applied; calibration tests use it for exact
	// reads.
	DisableMonitorNoise bool
}

func (s *Scenario) events() ([]*hpc.Event, error) {
	names := s.EventNames
	if names == nil {
		names = DefaultEventNames()
	}
	if len(names) == 0 {
		return nil, ErrNoEvents
	}
	out := make([]*hpc.Event, 0, len(names))
	for _, n := range names {
		e, ok := s.Catalog.ByName(n)
		if !ok {
			return nil, fmt.Errorf("attack: catalog has no event %q", n)
		}
		out = append(out, e)
	}
	return out, nil
}

// CollectOne records a single victim trace for the given secret, optionally
// under a defense.
func (s *Scenario) CollectOne(secret string, rep int, defense DefenseFactory) (trace.Trace, error) {
	events, err := s.events()
	if err != nil {
		return trace.Trace{}, err
	}
	worldCfg := s.World
	if worldCfg.PhysicalCores == 0 {
		worldCfg = sev.DefaultConfig(s.Seed)
	}
	stream := rng.New(s.Seed).Split("collect/"+secret).SplitN("rep", rep)
	worldCfg.Seed = stream.Uint64()
	world := sev.NewWorld(worldCfg)
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		return trace.Trace{}, err
	}
	runner := workload.NewRunner(s.App.Name(), workload.DefaultLibrary(1), stream.Split("runner"))
	job, err := s.App.Job(secret, stream.Split("job"))
	if err != nil {
		return trace.Trace{}, err
	}
	runner.Enqueue(job)
	if err := vm.AddProcess(0, runner); err != nil {
		return trace.Trace{}, err
	}
	if defense != nil {
		obf, err := defense(stream.Uint64())
		if err != nil {
			return trace.Trace{}, err
		}
		if err := vm.AddProcess(0, obf); err != nil {
			return trace.Trace{}, err
		}
	}
	coreIdx, err := vm.PhysicalCore(0)
	if err != nil {
		return trace.Trace{}, err
	}
	core, err := world.Core(coreIdx)
	if err != nil {
		return trace.Trace{}, err
	}
	var monitorNoise *rng.Source
	if !s.DisableMonitorNoise {
		monitorNoise = stream.Split("monitor")
	}
	col, err := trace.NewCollector(core, events, monitorNoise)
	if err != nil {
		return trace.Trace{}, err
	}
	return trace.CollectDuring(world, col, s.TraceTicks, secret)
}

// Collect records the full labelled dataset: TracesPerSecret recordings per
// secret, optionally under a defense.
func (s *Scenario) Collect(defense DefenseFactory) (*trace.Dataset, error) {
	events, err := s.events()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(events))
	for i, e := range events {
		names[i] = e.Name
	}
	ds := &trace.Dataset{EventNames: names}
	for _, secret := range s.App.Secrets() {
		for rep := 0; rep < s.TracesPerSecret; rep++ {
			tr, err := s.CollectOne(secret, rep, defense)
			if err != nil {
				return nil, fmt.Errorf("collect %s rep %d: %w", secret, rep, err)
			}
			ds.Add(tr)
		}
	}
	return ds, nil
}

// ModelKind selects the classification architecture.
type ModelKind string

// Classifier architectures: the MLP over flattened traces with pooled
// summary features, or the paper's 1-D CNN over the raw channel series.
const (
	ModelMLP ModelKind = "mlp"
	ModelCNN ModelKind = "cnn"
)

// Classifier is a trained classification attack (WFA or KSA). The paper
// uses a compact CNN (§III-C); this harness offers both that CNN and an
// MLP with engineered pooled features, selected by TrainConfig.Model.
type Classifier struct {
	mlp    *ml.MLP
	cnn    *ml.CNN1D
	labels *trace.LabelIndex
	norm   *trace.Normalizer
}

// TrainConfig tunes attack-model training.
type TrainConfig struct {
	// Epochs of SGD (paper Fig. 1 trains until the curve flattens).
	Epochs int
	// ValFraction of the dataset held out for validation (paper: 0.3).
	ValFraction float64
	// Hidden layer widths (MLP only); nil uses defaults.
	Hidden []int
	// Model selects the architecture; empty means ModelMLP.
	Model ModelKind
	// Seed drives initialisation and shuffling.
	Seed uint64
}

// DefaultTrainConfig returns the evaluation defaults.
func DefaultTrainConfig(seed uint64) TrainConfig {
	return TrainConfig{Epochs: 25, ValFraction: 0.3, Seed: seed}
}

// featurize z-scores a trace with the training normaliser and returns the
// flattened time series plus per-channel pooled summaries (sum, max, and
// burst count, i.e. ticks above 2σ). The pooled features give the MLP the
// translation invariance the paper's CNN gets from convolution+pooling —
// without them a keystroke burst at tick 10 and the same burst at tick 60
// would look unrelated.
func featurize(tr trace.Trace, norm *trace.Normalizer) []float64 {
	cp := tr.Clone()
	norm.Apply(&cp)
	out := cp.Flatten()
	for ch := 0; ch < cp.Events(); ch++ {
		var sum, maxV float64
		bursts := 0.0
		for t := range cp.Data {
			v := cp.Data[t][ch]
			sum += v
			if v > maxV {
				maxV = v
			}
			if v > 2 {
				bursts++
			}
		}
		out = append(out, sum, maxV, bursts)
	}
	return out
}

// channels transposes a normalised trace into channels×length form for
// the CNN.
func channels(tr trace.Trace, norm *trace.Normalizer) [][]float64 {
	cp := tr.Clone()
	norm.Apply(&cp)
	out := make([][]float64, cp.Events())
	for ch := range out {
		out[ch] = cp.Channel(ch)
	}
	return out
}

// TrainClassifier fits the classification attack on a labelled dataset and
// returns the model plus per-epoch training curves (Fig. 1a/1b).
func TrainClassifier(ds *trace.Dataset, cfg TrainConfig) (*Classifier, []ml.EpochStats, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, nil, ErrNoDataset
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 25
	}
	if cfg.ValFraction <= 0 || cfg.ValFraction >= 1 {
		cfg.ValFraction = 0.3
	}
	if cfg.Model == "" {
		cfg.Model = ModelMLP
	}
	r := rng.New(cfg.Seed).Split("classifier")
	train, val := ds.Split(1-cfg.ValFraction, r)
	norm, err := trace.FitNormalizer(train)
	if err != nil {
		return nil, nil, err
	}
	labels := trace.NewLabelIndex(ds.Classes())

	if cfg.Model == ModelCNN {
		build := func(sub *trace.Dataset) ([][][]float64, []int) {
			xs := make([][][]float64, 0, sub.Len())
			ys := make([]int, 0, sub.Len())
			for _, tr := range sub.Traces {
				xs = append(xs, channels(tr, norm))
				ys = append(ys, labels.Index(tr.Label))
			}
			return xs, ys
		}
		trainX, trainY := build(train)
		valX, valY := build(val)
		cnnCfg := ml.DefaultCNNConfig(
			train.Traces[0].Events(), train.Traces[0].Ticks(), labels.Len())
		cnnCfg.Seed = float64(cfg.Seed + 1)
		model, err := ml.NewCNN1D(cnnCfg)
		if err != nil {
			return nil, nil, err
		}
		stats, err := model.Train(trainX, trainY, cfg.Epochs, valX, valY)
		if err != nil {
			return nil, nil, err
		}
		return &Classifier{cnn: model, labels: labels, norm: norm}, stats, nil
	}

	build := func(sub *trace.Dataset) ([][]float64, []int) {
		xs := make([][]float64, 0, sub.Len())
		ys := make([]int, 0, sub.Len())
		for _, tr := range sub.Traces {
			xs = append(xs, featurize(tr, norm))
			ys = append(ys, labels.Index(tr.Label))
		}
		return xs, ys
	}
	trainX, trainY := build(train)
	valX, valY := build(val)

	inDim := len(trainX[0])
	mlpCfg := ml.DefaultMLPConfig(inDim, labels.Len())
	if cfg.Hidden != nil {
		layers := append([]int{inDim}, cfg.Hidden...)
		layers = append(layers, labels.Len())
		mlpCfg.Layers = layers
	}
	mlpCfg.Seed = cfg.Seed + 1
	model, err := ml.NewMLP(mlpCfg)
	if err != nil {
		return nil, nil, err
	}
	stats, err := model.Train(trainX, trainY, cfg.Epochs, valX, valY)
	if err != nil {
		return nil, nil, err
	}
	return &Classifier{mlp: model, labels: labels, norm: norm}, stats, nil
}

// PredictIndex returns the predicted secret of a single trace as its dense
// label index. Bulk evaluation goes through this form so per-trace
// comparisons stay on integers instead of round-tripping index → name →
// index through the label table.
func (c *Classifier) PredictIndex(tr trace.Trace) (int, error) {
	if c.cnn != nil {
		return c.cnn.Predict(channels(tr, c.norm))
	}
	return c.mlp.Predict(featurize(tr, c.norm))
}

// Predict returns the predicted secret of a single trace.
func (c *Classifier) Predict(tr trace.Trace) (string, error) {
	idx, err := c.PredictIndex(tr)
	if err != nil {
		return "", err
	}
	return c.labels.Name(idx), nil
}

// Evaluate returns the attack accuracy on a labelled dataset (the victim
// phase of the paper's attacks).
func (c *Classifier) Evaluate(ds *trace.Dataset) (float64, error) {
	if ds == nil || ds.Len() == 0 {
		return 0, ErrNoDataset
	}
	correct := 0
	for _, tr := range ds.Traces {
		pred, err := c.PredictIndex(tr)
		if err != nil {
			return 0, err
		}
		if pred == c.labels.Index(tr.Label) {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// Classes returns the number of secret classes (for random-guess baselines).
func (c *Classifier) Classes() int { return c.labels.Len() }

// ConfusionMatrix evaluates the classifier on a dataset and returns the
// class-name-ordered confusion table (rows = true labels, columns =
// predictions) plus the label order.
func (c *Classifier) ConfusionMatrix(ds *trace.Dataset) ([][]int, []string, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, nil, ErrNoDataset
	}
	n := c.labels.Len()
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for _, tr := range ds.Traces {
		truth := c.labels.Index(tr.Label)
		if truth < 0 {
			continue // trace labelled with a class unseen in training
		}
		pred, err := c.PredictIndex(tr)
		if err != nil {
			return nil, nil, err
		}
		if pred >= 0 && pred < n {
			m[truth][pred]++
		}
	}
	return m, c.labels.Names(), nil
}
