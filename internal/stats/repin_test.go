package stats

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"github.com/repro/aegis/internal/rng"
)

// repinRows builds a deterministic n×d matrix with a dominant direction.
func repinRows(t testing.TB, n, d int) [][]float64 {
	t.Helper()
	r := rng.New(33).Split("repin")
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		base := r.Gaussian(0, 3)
		for j := range row {
			row[j] = base*float64(j%5) + r.Gaussian(0, 1)
		}
		rows[i] = row
	}
	return rows
}

// covApplyRowwise is the pre-blocking covariance step (covApplyInto before
// the register-blocked kernel replaced it), kept verbatim as the
// bit-identity reference.
func covApplyRowwise(out []float64, centered [][]float64, v []float64) {
	for j := range out {
		out[j] = 0
	}
	for _, x := range centered {
		var dot float64
		for j := range v {
			dot += x[j] * v[j]
		}
		for j := range x {
			out[j] += dot * x[j]
		}
	}
	n := float64(len(centered))
	for j := range out {
		out[j] /= n
	}
}

// TestBlockedCovApplyBitIdentical pins the register-blocked covariance
// kernel against the row-at-a-time form it replaced: because Go evaluates
// `out[j] + d0*r0[j] + d1*r1[j] + d2*r2[j] + d3*r3[j]` left to right, the
// blocked update performs the exact floating-point additions of four
// sequential row updates, so the kernel is bit-identical — including the
// tail path for n % covBlock != 0 — and the FitPCA goldens from the
// original scratch-kernel PR did NOT need re-pinning.
func TestBlockedCovApplyBitIdentical(t *testing.T) {
	shapes := []struct{ n, d int }{
		{1, 3}, {2, 3}, {3, 7}, {4, 7}, {5, 7}, {6, 1}, {7, 12},
		{8, 12}, {9, 12}, {30, 40}, {72, 150},
	}
	for _, sh := range shapes {
		rows := repinRows(t, sh.n, sh.d)
		slab := make([]float64, sh.n*sh.d)
		for i, row := range rows {
			copy(slab[i*sh.d:(i+1)*sh.d], row)
		}
		v := make([]float64, sh.d)
		for j := range v {
			v[j] = 1 / math.Sqrt(float64(sh.d))
			if j%2 == 1 {
				v[j] = -v[j]
			}
		}
		want := make([]float64, sh.d)
		got := make([]float64, sh.d)
		covApplyRowwise(want, rows, v)
		covApplySlab(got, slab, sh.n, sh.d, v)
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("%dx%d: covApplySlab[%d] = %v (bits %#x), rowwise %v (bits %#x)",
					sh.n, sh.d, j, got[j], math.Float64bits(got[j]), want[j], math.Float64bits(want[j]))
			}
		}
	}
}

// oldBinnedMI is the pre-blocked-kernels estimator, kept verbatim as the
// re-pin reference: per-sample divide binning (binIndex) and the per-cell
// probability-quotient sum.
func oldBinnedMI(xs, ys []float64, bins int) float64 {
	xlo, xhi := MinMax(xs)
	ylo, yhi := MinMax(ys)
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	joint := make([][]float64, bins)
	for i := range joint {
		joint[i] = make([]float64, bins)
	}
	px := make([]float64, bins)
	py := make([]float64, bins)
	n := float64(len(xs))
	for i := range xs {
		bx := binIndex(xs[i], xlo, xhi, bins)
		by := binIndex(ys[i], ylo, yhi, bins)
		joint[bx][by]++
		px[bx]++
		py[by]++
	}
	var mi float64
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			if joint[i][j] == 0 {
				continue
			}
			pij := joint[i][j] / n
			mi += pij * math.Log2(pij*n*n/(px[i]*py[j]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// oldMutualInformation is the pre-blocked-kernels quadrature loop body,
// kept verbatim as the re-pin reference: per-(step, class) PDF calls and
// posterior normalisation by division.
func oldMutualInformation(classes []ClassModel, steps int) float64 {
	priors := make([]float64, len(classes))
	for i := range priors {
		priors[i] = 1 / float64(len(classes))
	}
	hy := Entropy(priors)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range classes {
		l := c.Dist.Mu - 6*c.Dist.Sigma
		h := c.Dist.Mu + 6*c.Dist.Sigma
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	dx := (hi - lo) / float64(steps)
	post := make([]float64, len(classes))
	var condEntropy float64
	for step := 0; step < steps; step++ {
		x := lo + (float64(step)+0.5)*dx
		var px float64
		for i, c := range classes {
			post[i] = c.Dist.PDF(x) * priors[i]
			px += post[i]
		}
		if px <= 0 {
			continue
		}
		for i := range post {
			post[i] /= px
		}
		condEntropy += px * Entropy(post) * dx
	}
	mi := hy - condEntropy
	if mi < 0 {
		mi = 0
	}
	if mi > hy {
		mi = hy
	}
	return mi
}

// TestKernelGoldenRepins is the per-kernel equivalence table of the blocked
// cache-friendly kernels PR. For each kernel it states whether the fused
// form preserves the exact floating-point operation order of the form it
// replaced (goldens keep their old bits) or changes rounding (goldens were
// re-pinned), and asserts the corresponding contract against the old
// implementation kept verbatim above:
//
//	kernel             golden    why
//	-----------------  --------  ------------------------------------------
//	FitPCA/FitPCASlab  KEPT      blocked covApplySlab replays the row-
//	                             sequential add order exactly (left-to-
//	                             right evaluation); see
//	                             TestBlockedCovApplyBitIdentical
//	BinnedMI           RE-PINNED reciprocal-width binning rounds bin
//	                             indices differently near boundaries, and
//	                             the count-entropy accumulation reorders
//	                             the log2 sum
//	MutualInformation  RE-PINNED hoisted class constants fold the prior
//	                             into the PDF normalisation and replace
//	                             the per-class divide with a 1/px multiply
//
// The re-pinned kernels must still agree with the old estimators to well
// inside quadrature/estimator error — the re-pin is a rounding change, not
// a value change.
func TestKernelGoldenRepins(t *testing.T) {
	// FitPCA: bit-identical across old row-view path, new row-view path
	// and the slab path.
	rows := repinRows(t, 30, 40)
	slab := make([]float64, 30*40)
	for i, row := range rows {
		copy(slab[i*40:(i+1)*40], row)
	}
	var s1, s2 Scratch
	fromRows, err := s1.FitPCA(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	fromSlab, err := s2.FitPCASlab(slab, 30, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := range fromRows.Mean {
		if math.Float64bits(fromRows.Mean[j]) != math.Float64bits(fromSlab.Mean[j]) {
			t.Fatalf("FitPCA mean[%d] differs between rows and slab paths", j)
		}
	}
	for c := range fromRows.Components {
		if math.Float64bits(fromRows.Variances[c]) != math.Float64bits(fromSlab.Variances[c]) {
			t.Fatalf("FitPCA variance[%d] differs between rows and slab paths", c)
		}
		for j := range fromRows.Components[c] {
			if math.Float64bits(fromRows.Components[c][j]) != math.Float64bits(fromSlab.Components[c][j]) {
				t.Fatalf("FitPCA component[%d][%d] differs between rows and slab paths", c, j)
			}
		}
	}

	// BinnedMI: re-pinned; old and new estimators agree to 1e-9 bits.
	r := rng.New(12).Split("binned-bench")
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Gaussian(0, 1)
		ys[i] = xs[i]*0.7 + r.Gaussian(0, 0.5)
	}
	newMI, err := BinnedMI(xs, ys, 16)
	if err != nil {
		t.Fatal(err)
	}
	oldMI := oldBinnedMI(xs, ys, 16)
	if math.Abs(newMI-oldMI) > 1e-9 {
		t.Fatalf("BinnedMI re-pin drifted beyond rounding: new %v vs old %v", newMI, oldMI)
	}

	// MutualInformation: re-pinned; old and new quadratures agree to 1e-9.
	classes := make([]ClassModel, 6)
	for i := range classes {
		classes[i] = ClassModel{
			Secret: string(rune('a' + i)),
			Dist:   Gaussian{Mu: float64(i) * 2.5, Sigma: 1 + 0.2*float64(i)},
		}
	}
	newQ, err := MutualInformation(classes, 600)
	if err != nil {
		t.Fatal(err)
	}
	oldQ := oldMutualInformation(classes, 600)
	if math.Abs(newQ-oldQ) > 1e-9 {
		t.Fatalf("MutualInformation re-pin drifted beyond rounding: new %v vs old %v", newQ, oldQ)
	}
}

// TestLog2CountTableBitIdentical pins the small-integer log2 table against
// on-demand math.Log2 calls: table hits must be bit-identical, and counts
// past the table fall back to the same call.
func TestLog2CountTableBitIdentical(t *testing.T) {
	for c := 1; c < 1200; c++ {
		got := log2Count(float64(c))
		want := math.Log2(float64(c))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("log2Count(%d) = %v, math.Log2 = %v", c, got, want)
		}
	}
	// Non-integer counts (never produced by the histograms, but the
	// helper must stay total) take the fallback.
	if got, want := log2Count(2.5), math.Log2(2.5); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("log2Count(2.5) = %v, want %v", got, want)
	}
}

// TestBlockedKernelsDeterministicAcrossParallelism runs the blocked kernels
// from concurrent workers (each with its own Scratch, per the ownership
// rules) at parallelism 1, 4 and GOMAXPROCS, and requires every worker's
// results to be bit-identical to the serial ones: the blocked paths carry
// no shared mutable state, so concurrency must not change a single bit.
func TestBlockedKernelsDeterministicAcrossParallelism(t *testing.T) {
	rows := repinRows(t, 72, 150)
	slab := make([]float64, 72*150)
	for i, row := range rows {
		copy(slab[i*150:(i+1)*150], row)
	}
	r := rng.New(12).Split("binned-bench")
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Gaussian(0, 1)
		ys[i] = xs[i]*0.7 + r.Gaussian(0, 0.5)
	}

	var serial Scratch
	wantPCA, err := serial.FitPCASlab(slab, 72, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantVar := wantPCA.Variances[0]
	wantComp := append([]float64(nil), wantPCA.Components[0]...)
	wantMI, err := serial.BinnedMI(xs, ys, 16)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var s Scratch
				for iter := 0; iter < 3; iter++ {
					p, err := s.FitPCASlab(slab, 72, 150, 1)
					if err != nil {
						errs[w] = err
						return
					}
					if math.Float64bits(p.Variances[0]) != math.Float64bits(wantVar) {
						t.Errorf("worker %d/%d: variance bits diverged", w, workers)
						return
					}
					for j := range wantComp {
						if math.Float64bits(p.Components[0][j]) != math.Float64bits(wantComp[j]) {
							t.Errorf("worker %d/%d: component[%d] bits diverged", w, workers, j)
							return
						}
					}
					mi, err := s.BinnedMI(xs, ys, 16)
					if err != nil {
						errs[w] = err
						return
					}
					if math.Float64bits(mi) != math.Float64bits(wantMI) {
						t.Errorf("worker %d/%d: BinnedMI bits diverged", w, workers)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}
