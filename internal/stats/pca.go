package stats

import (
	"fmt"
	"math"
)

// PCA holds a fitted principal component analysis: the data mean and the
// top-k principal directions of the training matrix.
type PCA struct {
	Mean       []float64
	Components [][]float64 // k rows, each a unit vector of length d
	Variances  []float64   // eigenvalue (explained variance) per component
}

// FitPCA fits a PCA with k components to rows (n samples × d features)
// using covariance eigendecomposition via orthogonal power iteration with
// deflation. The paper uses PCA to reduce each leakage time-series to a
// compact feature value before Gaussian modelling (paper §V-B).
//
// The result owns its buffers. Repeated fits of identically-shaped inputs
// should go through Scratch.FitPCA, which reuses all intermediates and
// produces bit-identical results.
func FitPCA(rows [][]float64, k int) (*PCA, error) {
	return new(Scratch).FitPCA(rows, k)
}

// FitPCA is FitPCA staged in the arena: the mean/centered/component
// buffers and the power-iteration work vector are all reused across calls.
// The returned *PCA aliases the arena and is valid until the next call on
// s (see the Scratch ownership rules).
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (s *Scratch) FitPCA(rows [][]float64, k int) (*PCA, error) {
	n := len(rows)
	if n < 2 {
		return nil, ErrInsufficientData
	}
	d := len(rows[0])
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("stats: row %d has %d features, want %d", i, len(r), d) //aegis:allow(hotpath) cold validation branch; shapes are fixed in steady state
		}
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("stats: invalid component count %d for dimension %d", k, d) //aegis:allow(hotpath) cold validation branch; shapes are fixed in steady state
	}

	s.mean = grow(s.mean, d)
	mean := s.mean
	for j := range mean {
		mean[j] = 0
	}
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	s.centSlab = grow(s.centSlab, n*d)
	for i, r := range rows {
		c := s.centSlab[i*d : (i+1)*d : (i+1)*d]
		for j, v := range r {
			c[j] = v - mean[j]
		}
	}
	return s.fitCentered(n, d, k)
}

// FitPCASlab is FitPCA over a contiguous row-major sample block: slab holds
// n rows of d features back to back, exactly the layout the profiler's
// trace collector produces. It avoids the per-row slice-header walk of the
// [][]float64 form and produces bit-identical results to FitPCA over row
// views of the same slab.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (s *Scratch) FitPCASlab(slab []float64, n, d, k int) (*PCA, error) {
	if n < 2 {
		return nil, ErrInsufficientData
	}
	if d < 1 || len(slab) != n*d {
		return nil, fmt.Errorf("stats: slab of %d values cannot hold %d×%d samples", len(slab), n, d) //aegis:allow(hotpath) cold validation branch; shapes are fixed in steady state
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("stats: invalid component count %d for dimension %d", k, d) //aegis:allow(hotpath) cold validation branch; shapes are fixed in steady state
	}

	// Mean and centering sweep the slab row by row, in the same element
	// order as the row-view path, so the centered matrix is bit-identical.
	s.mean = grow(s.mean, d)
	mean := s.mean
	for j := range mean {
		mean[j] = 0
	}
	for i := 0; i < n; i++ {
		r := slab[i*d : (i+1)*d : (i+1)*d]
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	s.centSlab = grow(s.centSlab, n*d)
	for i := 0; i < n; i++ {
		r := slab[i*d : (i+1)*d : (i+1)*d]
		c := s.centSlab[i*d : (i+1)*d : (i+1)*d]
		for j, v := range r {
			c[j] = v - mean[j]
		}
	}
	return s.fitCentered(n, d, k)
}

// fitCentered runs the power iteration over the centered slab prepared by
// FitPCA/FitPCASlab. Split out so both entry points share the blocked
// covariance kernel.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (s *Scratch) fitCentered(n, d, k int) (*PCA, error) {
	centered := s.centSlab[: n*d : n*d]
	s.compRows = growRows(s.compRows, k)
	s.compSlab = grow(s.compSlab, k*d)
	s.vars = grow(s.vars, k)
	s.w = grow(s.w, d)
	s.pca = PCA{
		Mean:       s.mean,
		Components: s.compRows[:0],
		Variances:  s.vars[:0],
	}
	p := &s.pca

	// Power iteration on the covariance operator. We never materialise the
	// d×d covariance matrix: cov·v = (1/n) Σ_i (x_i·v) x_i, which keeps the
	// cost at O(n·d) per iteration even for long traces.
	for comp := 0; comp < k; comp++ {
		v := s.compSlab[comp*d : (comp+1)*d : (comp+1)*d]
		// Deterministic non-degenerate start vector.
		for j := range v {
			v[j] = 1 / math.Sqrt(float64(d))
			if (j+comp)%2 == 1 {
				v[j] = -v[j]
			}
		}
		orthonormalize(v, p.Components)
		var lambda float64
		for iter := 0; iter < 200; iter++ {
			w := s.w
			covApplySlab(w, centered, n, d, v)
			orthonormalize(w, p.Components)
			norm := vecNorm(w)
			if norm < 1e-14 {
				break // no variance left in the residual subspace
			}
			for j := range w {
				w[j] /= norm
			}
			delta := 0.0
			for j := range w {
				delta += (w[j] - v[j]) * (w[j] - v[j])
			}
			copy(v, w)
			lambda = norm
			if delta < 1e-18 {
				break
			}
		}
		//aegis:allow(hotpath) arena-backed slices pre-grown to capacity k above; these appends never reallocate
		p.Components = append(p.Components, v)
		p.Variances = append(p.Variances, lambda) //aegis:allow(hotpath) arena-backed slice pre-grown to capacity k above; never reallocates
	}
	return p, nil
}

// Transform projects a sample onto the fitted components.
func (p *PCA) Transform(row []float64) ([]float64, error) {
	if len(row) != len(p.Mean) {
		return nil, fmt.Errorf("stats: sample has %d features, PCA fitted on %d", len(row), len(p.Mean))
	}
	out := make([]float64, len(p.Components))
	for c, comp := range p.Components {
		var dot float64
		for j, v := range row {
			dot += (v - p.Mean[j]) * comp[j]
		}
		out[c] = dot
	}
	return out, nil
}

// FirstComponent projects a sample onto the leading principal direction and
// returns the scalar feature value used for Gaussian modelling. It is the
// single-component Transform without the output allocation, so per-trace
// feature extraction stays allocation-free.
func (p *PCA) FirstComponent(row []float64) (float64, error) {
	if len(row) != len(p.Mean) {
		return 0, fmt.Errorf("stats: sample has %d features, PCA fitted on %d", len(row), len(p.Mean))
	}
	comp := p.Components[0]
	var dot float64
	for j, v := range row {
		dot += (v - p.Mean[j]) * comp[j]
	}
	return dot, nil
}

// covBlock is the register-blocking factor of covApplySlab: rows are
// processed in slabs of covBlock, giving covBlock independent dot-product
// accumulation chains (the serial FP-add latency otherwise bounds the
// loop) and one fused pass over `out` per block instead of one per row.
const covBlock = 4

// covApplySlab writes cov·v into out (zeroing it first) — the power-
// iteration step over the centered n×d row-major slab. Rows are carved in
// blocks of covBlock directly out of the slab: the block's dot products
// run as independent accumulator chains over one shared load of v, and the
// out update applies all covBlock contributions left-to-right, which is
// the exact floating-point operation order of the row-at-a-time form —
// the blocked kernel is bit-identical, so the PR-4 Float64bits pins hold
// (asserted by TestBlockedCovApplyBitIdentical).
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func covApplySlab(out []float64, slab []float64, n, d int, v []float64) {
	for j := range out {
		out[j] = 0
	}
	i := 0
	for ; i+covBlock <= n; i += covBlock {
		r0 := slab[(i+0)*d : (i+1)*d : (i+1)*d]
		r1 := slab[(i+1)*d : (i+2)*d : (i+2)*d]
		r2 := slab[(i+2)*d : (i+3)*d : (i+3)*d]
		r3 := slab[(i+3)*d : (i+4)*d : (i+4)*d]
		var d0, d1, d2, d3 float64
		for j, vj := range v {
			d0 += r0[j] * vj
			d1 += r1[j] * vj
			d2 += r2[j] * vj
			d3 += r3[j] * vj
		}
		// Left-to-right accumulation replays the row-sequential add order:
		// ((((out + d0·r0) + d1·r1) + d2·r2) + d3·r3).
		for j := range out {
			out[j] = out[j] + d0*r0[j] + d1*r1[j] + d2*r2[j] + d3*r3[j]
		}
	}
	for ; i < n; i++ {
		x := slab[i*d : (i+1)*d : (i+1)*d]
		var dot float64
		for j, vj := range v {
			dot += x[j] * vj
		}
		for j := range out {
			out[j] += dot * x[j]
		}
	}
	nf := float64(n)
	for j := range out {
		out[j] /= nf
	}
}

// orthonormalize removes the projections of v onto each basis vector
// (Gram-Schmidt) in place.
func orthonormalize(v []float64, basis [][]float64) {
	for _, b := range basis {
		var dot float64
		for j := range v {
			dot += v[j] * b[j]
		}
		for j := range v {
			v[j] -= dot * b[j]
		}
	}
}

func vecNorm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
