// Package stats implements the statistical machinery used throughout Aegis:
// Gaussian modelling of HPC event values, entropy and mutual information
// (paper Eq. 1), principal component analysis for trace feature extraction,
// Q-Q comparison against the standard normal, Kolmogorov-Smirnov testing,
// histograms, and binned mutual-information estimation between trace sets.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Gaussian is a univariate normal distribution N(mu, sigma^2).
type Gaussian struct {
	Mu    float64
	Sigma float64
}

// ErrInsufficientData is returned when an estimator is given fewer samples
// than it needs.
var ErrInsufficientData = errors.New("stats: insufficient data")

// FitGaussian estimates a Gaussian from samples by maximum likelihood.
// At least two samples are required so the variance is defined.
func FitGaussian(samples []float64) (Gaussian, error) {
	if len(samples) < 2 {
		return Gaussian{}, ErrInsufficientData
	}
	m := Mean(samples)
	v := Variance(samples, m)
	sigma := math.Sqrt(v)
	if sigma == 0 {
		// Degenerate distributions still need a usable density; use a
		// tiny width so PDF evaluations stay finite.
		sigma = 1e-9
	}
	return Gaussian{Mu: m, Sigma: sigma}, nil
}

// PDF evaluates the probability density at x.
func (g Gaussian) PDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	return math.Exp(-0.5*z*z) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// CDF evaluates the cumulative distribution at x.
func (g Gaussian) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-g.Mu)/(g.Sigma*math.Sqrt2))
}

// Quantile returns the inverse CDF at probability p in (0,1), computed with
// the Acklam rational approximation refined by one Newton step.
func (g Gaussian) Quantile(p float64) float64 {
	return g.Mu + g.Sigma*stdNormalQuantile(p)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs around the given mean.
func Variance(xs []float64, mean float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs, Mean(xs)))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return SortedMedian(cp)
}

// SortedMedian is Median for samples already in ascending order: no copy,
// no re-sort.
func SortedMedian(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MedianInt64 returns the median of integer samples, rounding half up.
func MedianInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]int64, len(xs))
	copy(cp, xs)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2] + 1) / 2
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (minV, maxV float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV
}

// Normalize scales xs to zero mean and unit variance in place and returns
// the transform parameters so the same scaling can be applied to held-out
// data.
func Normalize(xs []float64) (mean, std float64) {
	mean = Mean(xs)
	std = math.Sqrt(Variance(xs, mean))
	if std == 0 {
		std = 1
	}
	for i := range xs {
		xs[i] = (xs[i] - mean) / std
	}
	return mean, std
}

// stdNormalQuantile is the inverse standard normal CDF (Acklam's
// approximation, |relative error| < 1.15e-9 after one Halley refinement).
func stdNormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement using the normal PDF/CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
