package stats

import (
	"fmt"
	"math"
)

// MIAccum is a streaming, mergeable form of the BinnedMI estimator: a
// 2-D histogram whose bin ranges are fixed at construction, so sample
// batches can be binned independently — on different workers, in any
// order, across process restarts — and their count tables merged before
// one final sweep.
//
// Bit-identity contract: counts are exact non-negative integers stored in
// float64, so binning and merging are order-insensitive, and Value
// finishes the merged table with the same fused count-entropy sweep
// (countEntropyMI) and the same reciprocal-width binning (binCounts) the
// one-shot Scratch.BinnedMI path uses. An MIAccum constructed with the
// full data's MinMax ranges therefore returns the exact float64
// Scratch.BinnedMI would return on the concatenated samples, no matter
// how the batches were split or merged (pinned by TestMIAccumMergeBitIdentical).
// With any other fixed ranges it is still a consistent estimator, just a
// differently-binned one.
type MIAccum struct {
	bins     int
	xlo, xhi float64
	ylo, yhi float64
	invWx    float64
	invWy    float64
	joint    []float64 // bins×bins row-major exact counts
	py       []float64 // Y marginal counts
	n        float64   // total samples binned
}

// NewMIAccum builds an accumulator over bins×bins cells spanning
// [xlo,xhi]×[ylo,yhi]. It applies the same input clamps as BinnedMI:
// bins < 2 becomes 2, and a degenerate range (hi == lo) is widened to
// lo+1, so an accumulator built from MinMax of the full data bins exactly
// like the one-shot path.
func NewMIAccum(bins int, xlo, xhi, ylo, yhi float64) *MIAccum {
	if bins < 2 {
		bins = 2
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	return &MIAccum{
		bins:  bins,
		xlo:   xlo,
		xhi:   xhi,
		ylo:   ylo,
		yhi:   yhi,
		invWx: invW(bins, xlo, xhi),
		invWy: invW(bins, ylo, yhi),
		joint: make([]float64, bins*bins),
		py:    make([]float64, bins),
	}
}

// Bins returns the per-axis bin count.
func (a *MIAccum) Bins() int { return a.bins }

// N returns the number of samples binned so far.
func (a *MIAccum) N() int { return int(a.n) }

// Add bins one batch of paired samples into the partial count tables.
func (a *MIAccum) Add(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("stats: paired samples length mismatch %d != %d", len(xs), len(ys))
	}
	binCounts(a.joint, a.py, xs, ys, a.bins, a.xlo, a.ylo, a.invWx, a.invWy)
	a.n += float64(len(xs))
	return nil
}

// Merge folds another accumulator's counts into a. Both must share bins
// and ranges (i.e. be built by NewMIAccum with the same arguments);
// count addition is exact-integer arithmetic, so merge order can never
// change the final estimate.
func (a *MIAccum) Merge(b *MIAccum) error {
	if a.bins != b.bins || a.xlo != b.xlo || a.xhi != b.xhi || a.ylo != b.ylo || a.yhi != b.yhi {
		return fmt.Errorf("stats: merging incompatible MI accumulators (%d bins [%g,%g]x[%g,%g] vs %d bins [%g,%g]x[%g,%g])",
			a.bins, a.xlo, a.xhi, a.ylo, a.yhi, b.bins, b.xlo, b.xhi, b.ylo, b.yhi)
	}
	for i, c := range b.joint {
		a.joint[i] += c
	}
	for i, c := range b.py {
		a.py[i] += c
	}
	a.n += b.n
	return nil
}

// Counts returns the joint count table (bins×bins row-major), the Y
// marginal and the sample total — the artifact-serializable state of the
// accumulator. The slices alias the accumulator.
func (a *MIAccum) Counts() (joint, py []float64, n float64) {
	return a.joint, a.py, a.n
}

// SetCounts restores serialized state (e.g. loaded from an artifact
// section). Lengths must match the accumulator's shape.
func (a *MIAccum) SetCounts(joint, py []float64, n float64) error {
	if len(joint) != a.bins*a.bins || len(py) != a.bins {
		return fmt.Errorf("stats: count tables %d/%d do not fit %d bins", len(joint), len(py), a.bins)
	}
	copy(a.joint, joint)
	copy(a.py, py)
	a.n = n
	return nil
}

// Value finishes the accumulated table with the shared fused
// count-entropy sweep and returns the MI estimate in bits. It does not
// consume the accumulator; more batches may be added afterwards.
func (a *MIAccum) Value() (float64, error) {
	if int(a.n) < a.bins {
		return 0, ErrInsufficientData
	}
	return countEntropyMI(a.joint, a.py, a.bins, a.n), nil
}

// CovAccum accumulates the first and second moments of d-dimensional
// samples — n, Σx and Σx·xᵀ — the rank-updated covariance state behind
// incremental PCA re-fits: adding, removing or merging samples is O(d²)
// per row, so a workload delta re-fits from updated moments instead of
// re-streaming the full sample block.
//
// Unlike MIAccum, moment-form covariance is NOT bit-identical to the
// centered two-pass covariance of FitPCA/FitPCASlab: cov = Σx·xᵀ/n −
// mean·meanᵀ rounds differently from Σ(x−mean)(x−mean)ᵀ/n. FitPCAMoments
// therefore agrees with FitPCASlab only to numerical tolerance
// (TestFitPCAMomentsAgrees pins ~1e-8 on well-conditioned data), which is
// why the artifact-resume paths persist scored results, not moment state,
// wherever byte-identity is contractual.
type CovAccum struct {
	d     int
	n     float64
	sum   []float64
	outer []float64 // d×d row-major Σ x·xᵀ
}

// NewCovAccum builds an accumulator for d-dimensional samples.
func NewCovAccum(d int) *CovAccum {
	return &CovAccum{d: d, sum: make([]float64, d), outer: make([]float64, d*d)}
}

// Dim returns the sample dimension d.
func (c *CovAccum) Dim() int { return c.d }

// N returns the number of live samples.
func (c *CovAccum) N() int { return int(c.n) }

// Add rank-updates the moments with one sample.
func (c *CovAccum) Add(row []float64) error { return c.update(row, 1) }

// Remove rank-downdates the moments, deleting a previously added sample.
// The caller is responsible for only removing rows that were added; the
// moments cannot detect a mismatch.
func (c *CovAccum) Remove(row []float64) error { return c.update(row, -1) }

func (c *CovAccum) update(row []float64, sign float64) error {
	if len(row) != c.d {
		return fmt.Errorf("stats: sample has %d features, accumulator holds %d", len(row), c.d)
	}
	c.n += sign
	for i, v := range row {
		c.sum[i] += sign * v
		oi := c.outer[i*c.d : (i+1)*c.d : (i+1)*c.d]
		for j, w := range row {
			oi[j] += sign * v * w
		}
	}
	return nil
}

// Merge folds another accumulator of the same dimension into c.
func (c *CovAccum) Merge(o *CovAccum) error {
	if c.d != o.d {
		return fmt.Errorf("stats: merging covariance accumulators of dimension %d and %d", c.d, o.d)
	}
	c.n += o.n
	for i, v := range o.sum {
		c.sum[i] += v
	}
	for i, v := range o.outer {
		c.outer[i] += v
	}
	return nil
}

// FitPCAMoments fits a k-component PCA from accumulated moments: the
// covariance cov = Σx·xᵀ/n − mean·meanᵀ is materialised once (O(d²)) and
// power-iterated with deflation, reusing the arena's component buffers.
// The returned *PCA aliases the arena (Scratch ownership rules apply).
// See the CovAccum doc for the tolerance-vs-FitPCASlab contract.
func (s *Scratch) FitPCAMoments(c *CovAccum, k int) (*PCA, error) {
	n := c.n
	if n < 2 {
		return nil, ErrInsufficientData
	}
	d := c.d
	if k < 1 || k > d {
		return nil, fmt.Errorf("stats: invalid component count %d for dimension %d", k, d)
	}
	s.mean = grow(s.mean, d)
	mean := s.mean
	for j := range mean {
		mean[j] = c.sum[j] / n
	}
	// Materialise the covariance into the centered-slab arena buffer (the
	// moment path has no centered sample block to keep there).
	s.centSlab = grow(s.centSlab, d*d)
	cov := s.centSlab[: d*d : d*d]
	for i := 0; i < d; i++ {
		oi := c.outer[i*d : (i+1)*d : (i+1)*d]
		ci := cov[i*d : (i+1)*d : (i+1)*d]
		for j := range ci {
			ci[j] = oi[j]/n - mean[i]*mean[j]
		}
	}

	s.compRows = growRows(s.compRows, k)
	s.compSlab = grow(s.compSlab, k*d)
	s.vars = grow(s.vars, k)
	s.w = grow(s.w, d)
	s.pca = PCA{
		Mean:       mean,
		Components: s.compRows[:0],
		Variances:  s.vars[:0],
	}
	p := &s.pca

	for comp := 0; comp < k; comp++ {
		v := s.compSlab[comp*d : (comp+1)*d : (comp+1)*d]
		// Same deterministic start vector as fitCentered, so the two paths
		// converge toward the same eigenvector signs.
		for j := range v {
			v[j] = 1 / math.Sqrt(float64(d))
			if (j+comp)%2 == 1 {
				v[j] = -v[j]
			}
		}
		orthonormalize(v, p.Components)
		var lambda float64
		for iter := 0; iter < 200; iter++ {
			w := s.w
			for i := 0; i < d; i++ {
				ci := cov[i*d : (i+1)*d : (i+1)*d]
				var dot float64
				for j, vj := range v {
					dot += ci[j] * vj
				}
				w[i] = dot
			}
			orthonormalize(w, p.Components)
			norm := vecNorm(w)
			if norm < 1e-14 {
				break
			}
			for j := range w {
				w[j] /= norm
			}
			delta := 0.0
			for j := range w {
				delta += (w[j] - v[j]) * (w[j] - v[j])
			}
			copy(v, w)
			lambda = norm
			if delta < 1e-18 {
				break
			}
		}
		p.Components = append(p.Components, v)
		p.Variances = append(p.Variances, lambda)
	}
	return p, nil
}

// FitPCAMoments is the allocating convenience form.
func FitPCAMoments(c *CovAccum, k int) (*PCA, error) {
	return new(Scratch).FitPCAMoments(c, k)
}
