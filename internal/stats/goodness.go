package stats

import (
	"math"
	"sort"
)

// QQPoint is one point of a quantile-quantile plot: the theoretical standard
// normal quantile against the observed standardised sample quantile.
type QQPoint struct {
	Theoretical float64
	Observed    float64
}

// QQNormal produces the Q-Q plot data of samples against N(0,1), as in
// paper Fig. 3b. The samples are standardised first so perfectly Gaussian
// data lies on the y = x diagonal.
func QQNormal(samples []float64) []QQPoint {
	n := len(samples)
	if n == 0 {
		return nil
	}
	std := make([]float64, n)
	copy(std, samples)
	Normalize(std)
	sort.Float64s(std)
	points := make([]QQPoint, n)
	stdNormal := Gaussian{Mu: 0, Sigma: 1}
	for i := 0; i < n; i++ {
		// Blom plotting position.
		p := (float64(i) + 0.625) / (float64(n) + 0.25)
		points[i] = QQPoint{
			Theoretical: stdNormal.Quantile(p),
			Observed:    std[i],
		}
	}
	return points
}

// QQCorrelation returns the Pearson correlation of the Q-Q points; values
// near 1 indicate the sample is close to Gaussian.
func QQCorrelation(points []QQPoint) float64 {
	n := len(points)
	if n < 2 {
		return 0
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, p := range points {
		xs[i] = p.Theoretical
		ys[i] = p.Observed
	}
	return Pearson(xs, ys)
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples (0 when either sample is constant).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// KSNormal runs a one-sample Kolmogorov-Smirnov test of samples against the
// Gaussian fitted to them, returning the KS statistic D. Small D indicates
// good fit; the conventional 5% critical value is ~1.36/sqrt(n).
func KSNormal(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	g, err := FitGaussian(samples)
	if err != nil {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, samples)
	sort.Float64s(cp)
	var maxD float64
	for i, x := range cp {
		cdf := g.CDF(x)
		dPlus := float64(i+1)/float64(n) - cdf
		dMinus := cdf - float64(i)/float64(n)
		if dPlus > maxD {
			maxD = dPlus
		}
		if dMinus > maxD {
			maxD = dMinus
		}
	}
	return maxD
}

// Histogram bins samples into equal-width buckets over [lo, hi] and returns
// the per-bucket counts (used for the Fig. 3a density view).
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram with the given number of bins spanning
// the sample range.
func NewHistogram(samples []float64, bins int) Histogram {
	if bins < 1 {
		bins = 1
	}
	lo, hi := MinMax(samples)
	if hi == lo {
		hi = lo + 1
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, v := range samples {
		h.Counts[binIndex(v, lo, hi, bins)]++
	}
	return h
}

// Density returns the normalised density per bin (sums×binwidth = 1).
func (h Histogram) Density() []float64 {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	out := make([]float64, len(h.Counts))
	if total == 0 {
		return out
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / (float64(total) * width)
	}
	return out
}

// Percentile returns the q-th percentile (q in [0,100]) using linear
// interpolation between order statistics.
func Percentile(samples []float64, q float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, samples)
	sort.Float64s(cp)
	return SortedPercentile(cp, q)
}

// SortedPercentile is Percentile for samples already in ascending order:
// no copy, no re-sort. Tight loops that can keep their buffer sorted (or
// sort a private buffer in place once) should use this form.
func SortedPercentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[n-1]
	}
	pos := q / 100 * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Spearman returns the Spearman rank correlation of two equal-length
// samples: the Pearson correlation of their rank vectors, with average
// ranks for ties.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns the 1-based average ranks of xs.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank over the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
