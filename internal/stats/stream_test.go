package stats

import (
	"math"
	"testing"

	"github.com/repro/aegis/internal/rng"
)

// streamSamples draws a deterministic correlated sample pair.
func streamSamples(n int, seed uint64) (xs, ys []float64) {
	r := rng.New(seed).Split("stream-test")
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64() * 3
		ys[i] = 0.8*xs[i] + 0.6*r.NormFloat64()
	}
	return xs, ys
}

// TestMIAccumMergeBitIdentical pins the tentpole contract: partial count
// tables binned in independent chunks and merged (in any split, including
// per-chunk accumulators serialized through Counts/SetCounts) finish to
// the exact float64 the fused one-shot Scratch.BinnedMI sweep returns.
func TestMIAccumMergeBitIdentical(t *testing.T) {
	const bins = 24
	xs, ys := streamSamples(600, 11)
	want, err := BinnedMI(xs, ys, bins)
	if err != nil {
		t.Fatal(err)
	}
	xlo, xhi := MinMax(xs)
	ylo, yhi := MinMax(ys)

	for _, chunks := range []int{1, 2, 4, 7, 600} {
		total := NewMIAccum(bins, xlo, xhi, ylo, yhi)
		per := len(xs) / chunks
		for c := 0; c < chunks; c++ {
			lo, hi := c*per, (c+1)*per
			if c == chunks-1 {
				hi = len(xs)
			}
			// Each chunk gets its own accumulator (a worker shard), merged
			// via the serializable count tables.
			part := NewMIAccum(bins, xlo, xhi, ylo, yhi)
			if err := part.Add(xs[lo:hi], ys[lo:hi]); err != nil {
				t.Fatal(err)
			}
			joint, py, n := part.Counts()
			restored := NewMIAccum(bins, xlo, xhi, ylo, yhi)
			if err := restored.SetCounts(joint, py, n); err != nil {
				t.Fatal(err)
			}
			if err := total.Merge(restored); err != nil {
				t.Fatal(err)
			}
		}
		got, err := total.Value()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%d chunks: merged MI %v (%016x) != one-shot %v (%016x)",
				chunks, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestMIAccumDegenerateRange mirrors BinnedMI's hi==lo widening.
func TestMIAccumDegenerateRange(t *testing.T) {
	xs := make([]float64, 32)
	ys := make([]float64, 32)
	for i := range ys {
		ys[i] = float64(i % 5)
	}
	want, err := BinnedMI(xs, ys, 4)
	if err != nil {
		t.Fatal(err)
	}
	xlo, xhi := MinMax(xs)
	ylo, yhi := MinMax(ys)
	acc := NewMIAccum(4, xlo, xhi, ylo, yhi)
	if err := acc.Add(xs, ys); err != nil {
		t.Fatal(err)
	}
	got, err := acc.Value()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("degenerate-range MI %v != %v", got, want)
	}
}

func TestMIAccumErrors(t *testing.T) {
	acc := NewMIAccum(1, 0, 1, 0, 1) // bins clamps to 2
	if acc.Bins() != 2 {
		t.Fatalf("bins = %d, want 2", acc.Bins())
	}
	if err := acc.Add([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := acc.Value(); err == nil {
		t.Fatal("undersampled accumulator produced a value")
	}
	other := NewMIAccum(3, 0, 1, 0, 1)
	if err := acc.Merge(other); err == nil {
		t.Fatal("incompatible merge accepted")
	}
	if err := acc.SetCounts([]float64{1}, []float64{1, 2}, 3); err == nil {
		t.Fatal("mis-shaped SetCounts accepted")
	}
}

// TestCovAccumMatchesPCA checks the rank-update path against the two-pass
// fit: Add all rows (split across merged accumulators), fit, compare to
// FitPCASlab within tolerance; then Remove a block and compare against a
// fresh fit of the remaining rows — the incremental re-fit a workload
// delta performs.
func TestCovAccumMatchesPCA(t *testing.T) {
	const n, d = 60, 12
	r := rng.New(3).Split("cov-test")
	slab := make([]float64, n*d)
	for i := range slab {
		slab[i] = r.NormFloat64()*2 + math.Sin(float64(i%d))
	}

	accA := NewCovAccum(d)
	accB := NewCovAccum(d)
	for i := 0; i < n; i++ {
		row := slab[i*d : (i+1)*d]
		acc := accA
		if i%2 == 1 {
			acc = accB
		}
		if err := acc.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := accA.Merge(accB); err != nil {
		t.Fatal(err)
	}
	if accA.N() != n || accA.Dim() != d {
		t.Fatalf("accumulator shape %d×%d, want %d×%d", accA.N(), accA.Dim(), n, d)
	}

	var st Scratch
	ref, err := st.FitPCASlab(slab, n, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	refComp := append([]float64(nil), ref.Components[0]...)
	refVar := ref.Variances[0]
	refMean := append([]float64(nil), ref.Mean...)

	got, err := FitPCAMoments(accA, 1)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-8
	for j := range refMean {
		if math.Abs(got.Mean[j]-refMean[j]) > tol {
			t.Fatalf("mean[%d]: %v != %v", j, got.Mean[j], refMean[j])
		}
	}
	if math.Abs(got.Variances[0]-refVar) > tol*math.Max(1, refVar) {
		t.Fatalf("variance %v != %v", got.Variances[0], refVar)
	}
	align := 0.0
	for j := range refComp {
		align += got.Components[0][j] * refComp[j]
	}
	if math.Abs(math.Abs(align)-1) > tol {
		t.Fatalf("leading component misaligned: |dot| = %v", math.Abs(align))
	}

	// Delta re-fit: remove the last 10 rows and compare to a fresh fit of
	// the surviving block.
	const keep = n - 10
	for i := keep; i < n; i++ {
		if err := accA.Remove(slab[i*d : (i+1)*d]); err != nil {
			t.Fatal(err)
		}
	}
	ref2, err := st.FitPCASlab(slab[:keep*d], keep, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := FitPCAMoments(accA, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got2.Variances[0]-ref2.Variances[0]) > 1e-6*math.Max(1, ref2.Variances[0]) {
		t.Fatalf("post-remove variance %v != %v", got2.Variances[0], ref2.Variances[0])
	}
	align = 0
	for j := range ref2.Components[0] {
		align += got2.Components[0][j] * ref2.Components[0][j]
	}
	if math.Abs(math.Abs(align)-1) > 1e-6 {
		t.Fatalf("post-remove component misaligned: |dot| = %v", math.Abs(align))
	}
}

func TestCovAccumErrors(t *testing.T) {
	acc := NewCovAccum(3)
	if err := acc.Add([]float64{1, 2}); err == nil {
		t.Fatal("wrong-dimension row accepted")
	}
	if err := acc.Merge(NewCovAccum(4)); err == nil {
		t.Fatal("wrong-dimension merge accepted")
	}
	if _, err := FitPCAMoments(acc, 1); err == nil {
		t.Fatal("empty accumulator fitted")
	}
	acc.Add([]float64{1, 0, 0})
	acc.Add([]float64{0, 1, 0})
	if _, err := FitPCAMoments(acc, 9); err == nil {
		t.Fatal("oversized component count accepted")
	}
}
