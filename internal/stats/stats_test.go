package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/repro/aegis/internal/rng"
)

func TestFitGaussian(t *testing.T) {
	r := rng.New(1)
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = r.Gaussian(10, 3)
	}
	g, err := FitGaussian(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mu-10) > 0.1 {
		t.Errorf("mu = %v, want ~10", g.Mu)
	}
	if math.Abs(g.Sigma-3) > 0.1 {
		t.Errorf("sigma = %v, want ~3", g.Sigma)
	}
}

func TestFitGaussianInsufficient(t *testing.T) {
	if _, err := FitGaussian([]float64{1}); err != ErrInsufficientData {
		t.Fatalf("err = %v, want ErrInsufficientData", err)
	}
}

func TestGaussianPDFIntegratesToOne(t *testing.T) {
	g := Gaussian{Mu: 2, Sigma: 1.5}
	var integral float64
	const steps = 4000
	lo, hi := g.Mu-8*g.Sigma, g.Mu+8*g.Sigma
	dx := (hi - lo) / steps
	for i := 0; i < steps; i++ {
		integral += g.PDF(lo+(float64(i)+0.5)*dx) * dx
	}
	if math.Abs(integral-1) > 1e-6 {
		t.Errorf("PDF integral = %v, want 1", integral)
	}
}

func TestGaussianCDFQuantileInverse(t *testing.T) {
	g := Gaussian{Mu: -3, Sigma: 2}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x := g.Quantile(p)
		back := g.CDF(x)
		if math.Abs(back-p) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestEntropyUniform(t *testing.T) {
	p := []float64{0.25, 0.25, 0.25, 0.25}
	if h := Entropy(p); math.Abs(h-2) > 1e-12 {
		t.Errorf("entropy of uniform-4 = %v, want 2", h)
	}
}

func TestEntropyDegenerateIsZero(t *testing.T) {
	if h := Entropy([]float64{1, 0, 0}); h != 0 {
		t.Errorf("entropy of point mass = %v, want 0", h)
	}
}

func TestMutualInformationSeparatedClasses(t *testing.T) {
	// Well-separated classes: MI should approach H(Y) = log2(4) = 2 bits.
	classes := []ClassModel{
		{Secret: "a", Dist: Gaussian{Mu: 0, Sigma: 1}},
		{Secret: "b", Dist: Gaussian{Mu: 100, Sigma: 1}},
		{Secret: "c", Dist: Gaussian{Mu: 200, Sigma: 1}},
		{Secret: "d", Dist: Gaussian{Mu: 300, Sigma: 1}},
	}
	mi, err := MutualInformation(classes, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if mi < 1.95 || mi > 2.0001 {
		t.Errorf("MI = %v, want ~2 bits", mi)
	}
}

func TestMutualInformationIdenticalClasses(t *testing.T) {
	classes := []ClassModel{
		{Secret: "a", Dist: Gaussian{Mu: 5, Sigma: 2}},
		{Secret: "b", Dist: Gaussian{Mu: 5, Sigma: 2}},
	}
	mi, err := MutualInformation(classes, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if mi > 0.01 {
		t.Errorf("MI of identical classes = %v, want ~0", mi)
	}
}

func TestMutualInformationMonotoneInSeparation(t *testing.T) {
	prev := -1.0
	for _, sep := range []float64{0, 0.5, 1, 2, 4, 8} {
		classes := []ClassModel{
			{Secret: "a", Dist: Gaussian{Mu: 0, Sigma: 1}},
			{Secret: "b", Dist: Gaussian{Mu: sep, Sigma: 1}},
		}
		mi, err := MutualInformation(classes, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if mi < prev-1e-6 {
			t.Errorf("MI not monotone: sep=%v mi=%v prev=%v", sep, mi, prev)
		}
		prev = mi
	}
}

func TestMutualInformationBounded(t *testing.T) {
	if err := quick.Check(func(m1, m2 uint8, s1, s2 uint8) bool {
		classes := []ClassModel{
			{Secret: "a", Dist: Gaussian{Mu: float64(m1), Sigma: float64(s1%10) + 0.5}},
			{Secret: "b", Dist: Gaussian{Mu: float64(m2), Sigma: float64(s2%10) + 0.5}},
		}
		mi, err := MutualInformation(classes, 600)
		return err == nil && mi >= 0 && mi <= 1.0001
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinnedMIPerfectCorrelation(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 20000)
	ys := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = xs[i]
	}
	mi, err := BinnedMI(xs, ys, 16)
	if err != nil {
		t.Fatal(err)
	}
	if mi < 3.5 { // log2(16) = 4 bits max; identical values ≈ 4
		t.Errorf("MI of identical samples = %v, want near 4", mi)
	}
}

func TestBinnedMIIndependent(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 50000)
	ys := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	mi, err := BinnedMI(xs, ys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mi > 0.01 {
		t.Errorf("MI of independent samples = %v, want ~0", mi)
	}
}

func TestBinnedMINoiseDecreases(t *testing.T) {
	r := rng.New(4)
	base := make([]float64, 20000)
	for i := range base {
		base[i] = r.Gaussian(0, 1)
	}
	prev := math.Inf(1)
	for _, noise := range []float64{0.1, 1, 10} {
		ys := make([]float64, len(base))
		for i := range ys {
			ys[i] = base[i] + r.Gaussian(0, noise)
		}
		mi, err := BinnedMI(base, ys, 12)
		if err != nil {
			t.Fatal(err)
		}
		if mi > prev {
			t.Errorf("MI increased with noise %v: %v > %v", noise, mi, prev)
		}
		prev = mi
	}
}

func TestDiscreteMI(t *testing.T) {
	// Perfectly dependent 2x2 table: 1 bit.
	joint := [][]float64{{50, 0}, {0, 50}}
	if mi := DiscreteMI(joint); math.Abs(mi-1) > 1e-12 {
		t.Errorf("MI = %v, want 1", mi)
	}
	// Independent table: 0 bits.
	joint = [][]float64{{25, 25}, {25, 25}}
	if mi := DiscreteMI(joint); mi > 1e-12 {
		t.Errorf("MI = %v, want 0", mi)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("median = %v, want 3", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median = %v, want 2.5", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("median of empty = %v, want 0", m)
	}
}

func TestMedianInt64(t *testing.T) {
	if m := MedianInt64([]int64{9, 1, 5}); m != 5 {
		t.Errorf("median = %v, want 5", m)
	}
	if m := MedianInt64([]int64{1, 2}); m != 2 { // rounds half up
		t.Errorf("median = %v, want 2", m)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	mean, std := Normalize(xs)
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if std <= 0 {
		t.Errorf("std = %v, want > 0", std)
	}
	if m := Mean(xs); math.Abs(m) > 1e-12 {
		t.Errorf("normalized mean = %v, want 0", m)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50 = %v, want 3", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %v, want 5", p)
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but non-linear relation: Spearman = 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if s := Spearman(xs, ys); math.Abs(s-1) > 1e-12 {
		t.Errorf("spearman = %v, want 1", s)
	}
	// Reversed: -1.
	rev := []float64{5, 4, 3, 2, 1}
	if s := Spearman(xs, rev); math.Abs(s+1) > 1e-12 {
		t.Errorf("spearman reversed = %v, want -1", s)
	}
	// Ties handled with average ranks.
	tied := []float64{1, 1, 2, 2, 3}
	if s := Spearman(tied, tied); math.Abs(s-1) > 1e-12 {
		t.Errorf("spearman of identical tied = %v, want 1", s)
	}
	if Spearman(xs, xs[:2]) != 0 {
		t.Error("length mismatch not 0")
	}
}
