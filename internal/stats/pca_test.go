package stats

import (
	"math"
	"testing"

	"github.com/repro/aegis/internal/rng"
)

// synthRows builds samples whose variance is dominated by one direction.
func synthRows(r *rng.Source, n, d int, dir []float64, scale float64) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		t := r.Gaussian(0, scale)
		for j := range row {
			row[j] = t*dir[j] + r.Gaussian(0, 0.1)
		}
		rows[i] = row
	}
	return rows
}

func unit(d int, f func(int) float64) []float64 {
	v := make([]float64, d)
	var norm float64
	for j := range v {
		v[j] = f(j)
		norm += v[j] * v[j]
	}
	norm = math.Sqrt(norm)
	for j := range v {
		v[j] /= norm
	}
	return v
}

func TestFitPCARecoversDominantDirection(t *testing.T) {
	r := rng.New(10)
	d := 20
	dir := unit(d, func(j int) float64 { return math.Sin(float64(j)) + 2 })
	rows := synthRows(r, 500, d, dir, 5)

	p, err := FitPCA(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	var dot float64
	for j := range dir {
		dot += dir[j] * p.Components[0][j]
	}
	if math.Abs(dot) < 0.98 {
		t.Errorf("leading component alignment |dot| = %v, want > 0.98", math.Abs(dot))
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	r := rng.New(11)
	rows := make([][]float64, 300)
	for i := range rows {
		row := make([]float64, 8)
		for j := range row {
			row[j] = r.Gaussian(float64(j), float64(j%3)+1)
		}
		rows[i] = row
	}
	p, err := FitPCA(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			var dot float64
			for j := range p.Components[a] {
				dot += p.Components[a][j] * p.Components[b][j]
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Errorf("components %d,%d dot = %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestPCAVariancesDecreasing(t *testing.T) {
	r := rng.New(12)
	rows := make([][]float64, 400)
	for i := range rows {
		row := make([]float64, 6)
		row[0] = r.Gaussian(0, 10)
		row[1] = r.Gaussian(0, 5)
		row[2] = r.Gaussian(0, 2)
		for j := 3; j < 6; j++ {
			row[j] = r.Gaussian(0, 0.5)
		}
		rows[i] = row
	}
	p, err := FitPCA(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.Variances); i++ {
		if p.Variances[i] > p.Variances[i-1]+1e-9 {
			t.Errorf("variances not sorted: %v", p.Variances)
		}
	}
	if p.Variances[0] < 80 || p.Variances[0] > 120 {
		t.Errorf("leading eigenvalue = %v, want ~100", p.Variances[0])
	}
}

func TestPCATransformDimensions(t *testing.T) {
	r := rng.New(13)
	rows := synthRows(r, 100, 10, unit(10, func(j int) float64 { return 1 }), 3)
	p, err := FitPCA(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Transform(rows[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("transform returned %d values, want 2", len(out))
	}
	if _, err := p.Transform(make([]float64, 5)); err == nil {
		t.Error("transform accepted wrong dimension")
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 1); err == nil {
		t.Error("FitPCA(nil) did not error")
	}
	rows := [][]float64{{1, 2}, {3, 4}}
	if _, err := FitPCA(rows, 0); err == nil {
		t.Error("FitPCA with k=0 did not error")
	}
	if _, err := FitPCA(rows, 3); err == nil {
		t.Error("FitPCA with k>d did not error")
	}
	if _, err := FitPCA([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Error("FitPCA with ragged rows did not error")
	}
}

func TestQQNormalGaussianNearDiagonal(t *testing.T) {
	r := rng.New(14)
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = r.Gaussian(42, 7)
	}
	points := QQNormal(samples)
	corr := QQCorrelation(points)
	if corr < 0.999 {
		t.Errorf("Q-Q correlation for Gaussian data = %v, want > 0.999", corr)
	}
}

func TestQQNormalUniformDeviates(t *testing.T) {
	r := rng.New(15)
	gauss := make([]float64, 5000)
	unif := make([]float64, 5000)
	for i := range gauss {
		gauss[i] = r.Gaussian(0, 1)
		unif[i] = r.Float64()
	}
	gc := QQCorrelation(QQNormal(gauss))
	uc := QQCorrelation(QQNormal(unif))
	if uc >= gc {
		t.Errorf("uniform Q-Q correlation %v not below Gaussian %v", uc, gc)
	}
}

func TestKSNormal(t *testing.T) {
	r := rng.New(16)
	n := 2000
	gauss := make([]float64, n)
	skewed := make([]float64, n)
	for i := range gauss {
		gauss[i] = r.Gaussian(0, 1)
		skewed[i] = r.Exponential(1)
	}
	dg := KSNormal(gauss)
	ds := KSNormal(skewed)
	crit := 1.36 / math.Sqrt(float64(n))
	if dg > crit {
		t.Errorf("KS for Gaussian = %v above critical %v", dg, crit)
	}
	if ds < crit {
		t.Errorf("KS for exponential = %v below critical %v", ds, crit)
	}
}

func TestHistogramCounts(t *testing.T) {
	h := NewHistogram([]float64{0, 0.1, 0.9, 1.0}, 2)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 4 {
		t.Errorf("histogram total = %d, want 4", total)
	}
	d := h.Density()
	var integral float64
	width := (h.Hi - h.Lo) / float64(len(d))
	for _, v := range d {
		integral += v * width
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("density integral = %v, want 1", integral)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := Pearson(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Errorf("pearson = %v, want 1", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Pearson(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Errorf("pearson = %v, want -1", c)
	}
	if c := Pearson(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("pearson with constant = %v, want 0", c)
	}
}
