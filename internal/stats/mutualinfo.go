package stats

import (
	"fmt"
	"math"
)

// Entropy returns the Shannon entropy (in bits) of a discrete probability
// distribution. Zero-probability entries contribute zero.
func Entropy(p []float64) float64 {
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log2(pi)
		}
	}
	return h
}

// ClassModel is the Gaussian leakage model of one secret class: the
// distribution of an event's feature value when the application runs that
// secret, plus the prior probability of the secret.
type ClassModel struct {
	Secret string
	Prior  float64
	Dist   Gaussian
}

// MutualInformation computes I(Y;X) per paper Eq. 1 for a set of secrets Y
// whose per-class feature distributions P(x|y) are Gaussian:
//
//	I(Y;X) = H(Y) - ∫ P(x) H(Y | X=x) dx
//
// The integral is evaluated numerically over ±span standard deviations
// around the widest class envelope with the given number of grid steps.
// The result is in bits and lies in [0, H(Y)] up to quadrature error.
//
// Repeated evaluations should go through Scratch.MutualInformation, which
// reuses the prior/posterior grids and produces bit-identical results.
func MutualInformation(classes []ClassModel, steps int) (float64, error) {
	return new(Scratch).MutualInformation(classes, steps)
}

// MutualInformation is MutualInformation staged in the arena.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (s *Scratch) MutualInformation(classes []ClassModel, steps int) (float64, error) {
	if len(classes) == 0 {
		return 0, ErrInsufficientData
	}
	if steps < 16 {
		steps = 16
	}
	s.priors = grow(s.priors, len(classes))
	priors := s.priors
	var total float64
	for i, c := range classes {
		if c.Prior < 0 {
			return 0, fmt.Errorf("stats: negative prior for %q", c.Secret) //aegis:allow(hotpath) cold validation branch; priors are screened before the loop in steady state
		}
		priors[i] = c.Prior
		total += c.Prior
	}
	if total == 0 {
		// Uniform prior by default.
		for i := range priors {
			priors[i] = 1 / float64(len(classes))
		}
	} else {
		for i := range priors {
			priors[i] /= total
		}
	}

	hy := Entropy(priors)

	// Integration domain: cover every class mean ± 6 sigma.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range classes {
		l := c.Dist.Mu - 6*c.Dist.Sigma
		h := c.Dist.Mu + 6*c.Dist.Sigma
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	if !(hi > lo) {
		return 0, ErrInsufficientData
	}

	dx := (hi - lo) / float64(steps)
	s.post = grow(s.post, len(classes))
	post := s.post
	// Hoist the per-class Gaussian constants out of the quadrature loop:
	// prior_i·PDF_i(x) = scaled_i · exp(-0.5·((x-mu_i)·invSig_i)²) with
	// scaled_i = prior_i/(sigma_i·√2π). This replaces two divisions and a
	// multiply per (step, class) with one multiply, and the posterior
	// normalisation below multiplies by a hoisted 1/px instead of dividing
	// per class. Both change floating-point rounding versus the unfused
	// quadrature, so the kernel goldens were explicitly re-pinned — see
	// TestKernelGoldenRepins for the old/new equivalence table.
	s.mus = grow(s.mus, len(classes))
	s.invSig = grow(s.invSig, len(classes))
	s.scaled = grow(s.scaled, len(classes))
	for i, c := range classes {
		s.mus[i] = c.Dist.Mu
		s.invSig[i] = 1 / c.Dist.Sigma
		s.scaled[i] = priors[i] / (c.Dist.Sigma * math.Sqrt(2*math.Pi))
	}
	mus, invSig, scaled := s.mus, s.invSig, s.scaled
	var condEntropy float64
	for step := 0; step < steps; step++ {
		x := lo + (float64(step)+0.5)*dx
		var px float64
		for i := range post {
			z := (x - mus[i]) * invSig[i]
			q := scaled[i] * math.Exp(-0.5*z*z)
			post[i] = q
			px += q
		}
		if px <= 0 {
			continue
		}
		// Fused sweep: posterior normalisation and the conditional-entropy
		// accumulation share one pass over the classes.
		invPx := 1 / px
		var h float64
		for _, q := range post {
			p := q * invPx
			if p > 0 {
				h -= p * math.Log2(p)
			}
		}
		condEntropy += px * h * dx
	}

	mi := hy - condEntropy
	if mi < 0 {
		mi = 0 // quadrature error can go slightly negative
	}
	if mi > hy {
		mi = hy
	}
	return mi, nil
}

// BinnedMI estimates the mutual information (in bits) between two paired
// continuous samples using an equal-width 2-D histogram. This is the
// estimator behind Fig. 9c: I(X;X') between clean and noised leakage traces.
//
// Repeated evaluations should go through Scratch.BinnedMI, which reuses
// the joint/marginal tables and produces bit-identical results.
func BinnedMI(xs, ys []float64, bins int) (float64, error) {
	return new(Scratch).BinnedMI(xs, ys, bins)
}

// BinnedMI is BinnedMI staged in the arena.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (s *Scratch) BinnedMI(xs, ys []float64, bins int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: paired samples length mismatch %d != %d", len(xs), len(ys)) //aegis:allow(hotpath) cold validation branch; lengths are fixed in steady state
	}
	if len(xs) < bins {
		return 0, ErrInsufficientData
	}
	if bins < 2 {
		bins = 2
	}
	xlo, xhi := MinMax(xs)
	ylo, yhi := MinMax(ys)
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	s.jointSlab = grow(s.jointSlab, bins*bins)
	joint := s.jointSlab[: bins*bins : bins*bins]
	for i := range joint {
		joint[i] = 0
	}
	s.py = grow(s.py, bins)
	py := s.py[:bins:bins]
	for i := range py {
		py[i] = 0
	}
	// Binning and the fused count-entropy sweep are shared with MIAccum
	// (stream.go): the accumulator bins partial sample batches with
	// binCounts and finishes merged tables with countEntropyMI, so a
	// merged partial-count estimate is bit-identical to this one-shot
	// path over the concatenated samples.
	binCounts(joint, py, xs, ys, bins, xlo, ylo, invW(bins, xlo, xhi), invW(bins, ylo, yhi))
	return countEntropyMI(joint, py, bins, float64(len(xs))), nil
}

// invW returns the reciprocal bin width float64(bins)/(hi-lo). Kept as
// one expression so every binning call site rounds identically.
//
//aegis:hotpath
func invW(bins int, lo, hi float64) float64 {
	return float64(bins) / (hi - lo)
}

// binCounts bins the paired samples into the bins×bins joint count table
// and the Y marginal: one multiply by the precomputed reciprocal bin
// width per axis instead of a divide per sample. The reciprocal form
// rounds differently from (v-lo)/(hi-lo)·bins, so a sample landing within
// one ULP of a bin boundary may shift one bin — the estimator goldens
// were explicitly re-pinned (see TestKernelGoldenRepins). Counts stay
// exact integers, so everything downstream of binning is
// order-insensitive — which is also what makes MIAccum partial tables
// mergeable without changing the estimate.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func binCounts(joint, py, xs, ys []float64, bins int, xlo, ylo, invWx, invWy float64) {
	last := bins - 1
	for i := range xs {
		bx := int((xs[i] - xlo) * invWx)
		if bx < 0 {
			bx = 0
		} else if bx > last {
			bx = last
		}
		by := int((ys[i] - ylo) * invWy)
		if by < 0 {
			by = 0
		} else if by > last {
			by = last
		}
		joint[bx*bins+by]++
		py[by]++
	}
}

// countEntropyMI is the fused MI sweep over an exact-integer joint count
// table: the X-marginal histogram build and the MI accumulation share a
// single pass over each joint row — the row sum (an exact integer) is
// px[i], consumed immediately by the row's entropy term. The estimator is
// accumulated in count-entropy form,
//
//	I = (Σ c·log2 c − Σ px·log2 px − Σ py·log2 py)/n + log2 n,
//
// which is algebraically the Σ p·log2(p/(px·py)) sum but touches log2
// only for counts ≥ 2 (log2 1 = 0), and those counts are exact small
// integers served from a precomputed table. The summation order and
// rounding differ from the per-cell quotient form, so the estimator
// goldens were explicitly re-pinned (see TestKernelGoldenRepins).
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func countEntropyMI(joint, py []float64, bins int, n float64) float64 {
	var sc, sx float64
	for i := 0; i < bins; i++ {
		row := joint[i*bins : (i+1)*bins : (i+1)*bins]
		var rx float64
		for _, c := range row {
			rx += c
			if c > 1 {
				sc += c * log2Count(c)
			}
		}
		if rx > 1 {
			sx += rx * log2Count(rx)
		}
	}
	var sy float64
	for _, c := range py {
		if c > 1 {
			sy += c * log2Count(c)
		}
	}
	mi := (sc-sx-sy)/n + math.Log2(n)
	if mi < 0 {
		mi = 0
	}
	return mi
}

// log2IntTab caches log2 of small integer counts; entries are produced by
// the same math.Log2 call sites the kernels would otherwise hit, so table
// hits are bit-identical to computing on demand.
var log2IntTab = func() [1025]float64 {
	var t [1025]float64
	for i := 1; i < len(t); i++ {
		t[i] = math.Log2(float64(i))
	}
	return t
}()

// log2Count returns log2 of a histogram count (an exact non-negative
// integer stored in a float64), from the table when small.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func log2Count(c float64) float64 {
	if ci := int(c); ci >= 0 && ci < len(log2IntTab) && float64(ci) == c {
		return log2IntTab[ci]
	}
	return math.Log2(c)
}

// DiscreteMI computes the exact mutual information of a joint count table.
func DiscreteMI(joint [][]float64) float64 {
	var n float64
	rows := len(joint)
	if rows == 0 {
		return 0
	}
	cols := len(joint[0])
	px := make([]float64, rows)
	py := make([]float64, cols)
	for i := range joint {
		for j := range joint[i] {
			n += joint[i][j]
			px[i] += joint[i][j]
			py[j] += joint[i][j]
		}
	}
	if n == 0 {
		return 0
	}
	var mi float64
	for i := range joint {
		for j := range joint[i] {
			if joint[i][j] == 0 {
				continue
			}
			pij := joint[i][j] / n
			mi += pij * math.Log2(pij*n*n/(px[i]*py[j]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

func binIndex(v, lo, hi float64, bins int) int {
	idx := int((v - lo) / (hi - lo) * float64(bins))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	return idx
}
