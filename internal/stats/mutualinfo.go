package stats

import (
	"fmt"
	"math"
)

// Entropy returns the Shannon entropy (in bits) of a discrete probability
// distribution. Zero-probability entries contribute zero.
func Entropy(p []float64) float64 {
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log2(pi)
		}
	}
	return h
}

// ClassModel is the Gaussian leakage model of one secret class: the
// distribution of an event's feature value when the application runs that
// secret, plus the prior probability of the secret.
type ClassModel struct {
	Secret string
	Prior  float64
	Dist   Gaussian
}

// MutualInformation computes I(Y;X) per paper Eq. 1 for a set of secrets Y
// whose per-class feature distributions P(x|y) are Gaussian:
//
//	I(Y;X) = H(Y) - ∫ P(x) H(Y | X=x) dx
//
// The integral is evaluated numerically over ±span standard deviations
// around the widest class envelope with the given number of grid steps.
// The result is in bits and lies in [0, H(Y)] up to quadrature error.
//
// Repeated evaluations should go through Scratch.MutualInformation, which
// reuses the prior/posterior grids and produces bit-identical results.
func MutualInformation(classes []ClassModel, steps int) (float64, error) {
	return new(Scratch).MutualInformation(classes, steps)
}

// MutualInformation is MutualInformation staged in the arena.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (s *Scratch) MutualInformation(classes []ClassModel, steps int) (float64, error) {
	if len(classes) == 0 {
		return 0, ErrInsufficientData
	}
	if steps < 16 {
		steps = 16
	}
	s.priors = grow(s.priors, len(classes))
	priors := s.priors
	var total float64
	for i, c := range classes {
		if c.Prior < 0 {
			return 0, fmt.Errorf("stats: negative prior for %q", c.Secret) //aegis:allow(hotpath) cold validation branch; priors are screened before the loop in steady state
		}
		priors[i] = c.Prior
		total += c.Prior
	}
	if total == 0 {
		// Uniform prior by default.
		for i := range priors {
			priors[i] = 1 / float64(len(classes))
		}
	} else {
		for i := range priors {
			priors[i] /= total
		}
	}

	hy := Entropy(priors)

	// Integration domain: cover every class mean ± 6 sigma.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range classes {
		l := c.Dist.Mu - 6*c.Dist.Sigma
		h := c.Dist.Mu + 6*c.Dist.Sigma
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	if !(hi > lo) {
		return 0, ErrInsufficientData
	}

	dx := (hi - lo) / float64(steps)
	s.post = grow(s.post, len(classes))
	post := s.post
	var condEntropy float64
	for step := 0; step < steps; step++ {
		x := lo + (float64(step)+0.5)*dx
		var px float64
		for i, c := range classes {
			post[i] = c.Dist.PDF(x) * priors[i]
			px += post[i]
		}
		if px <= 0 {
			continue
		}
		for i := range post {
			post[i] /= px
		}
		condEntropy += px * Entropy(post) * dx
	}

	mi := hy - condEntropy
	if mi < 0 {
		mi = 0 // quadrature error can go slightly negative
	}
	if mi > hy {
		mi = hy
	}
	return mi, nil
}

// BinnedMI estimates the mutual information (in bits) between two paired
// continuous samples using an equal-width 2-D histogram. This is the
// estimator behind Fig. 9c: I(X;X') between clean and noised leakage traces.
//
// Repeated evaluations should go through Scratch.BinnedMI, which reuses
// the joint/marginal tables and produces bit-identical results.
func BinnedMI(xs, ys []float64, bins int) (float64, error) {
	return new(Scratch).BinnedMI(xs, ys, bins)
}

// BinnedMI is BinnedMI staged in the arena.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (s *Scratch) BinnedMI(xs, ys []float64, bins int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: paired samples length mismatch %d != %d", len(xs), len(ys)) //aegis:allow(hotpath) cold validation branch; lengths are fixed in steady state
	}
	if len(xs) < bins {
		return 0, ErrInsufficientData
	}
	if bins < 2 {
		bins = 2
	}
	xlo, xhi := MinMax(xs)
	ylo, yhi := MinMax(ys)
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	s.jointRows = growRows(s.jointRows, bins)
	s.jointSlab = grow(s.jointSlab, bins*bins)
	joint := s.jointRows
	for i := range joint {
		row := s.jointSlab[i*bins : (i+1)*bins : (i+1)*bins]
		for j := range row {
			row[j] = 0
		}
		joint[i] = row
	}
	s.px = grow(s.px, bins)
	s.py = grow(s.py, bins)
	px, py := s.px, s.py
	for i := range px {
		px[i] = 0
		py[i] = 0
	}
	n := float64(len(xs))
	for i := range xs {
		bx := binIndex(xs[i], xlo, xhi, bins)
		by := binIndex(ys[i], ylo, yhi, bins)
		joint[bx][by]++
		px[bx]++
		py[by]++
	}
	var mi float64
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			if joint[i][j] == 0 {
				continue
			}
			pij := joint[i][j] / n
			mi += pij * math.Log2(pij*n*n/(px[i]*py[j]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi, nil
}

// DiscreteMI computes the exact mutual information of a joint count table.
func DiscreteMI(joint [][]float64) float64 {
	var n float64
	rows := len(joint)
	if rows == 0 {
		return 0
	}
	cols := len(joint[0])
	px := make([]float64, rows)
	py := make([]float64, cols)
	for i := range joint {
		for j := range joint[i] {
			n += joint[i][j]
			px[i] += joint[i][j]
			py[j] += joint[i][j]
		}
	}
	if n == 0 {
		return 0
	}
	var mi float64
	for i := range joint {
		for j := range joint[i] {
			if joint[i][j] == 0 {
				continue
			}
			pij := joint[i][j] / n
			mi += pij * math.Log2(pij*n*n/(px[i]*py[j]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

func binIndex(v, lo, hi float64, bins int) int {
	idx := int((v - lo) / (hi - lo) * float64(bins))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	return idx
}
