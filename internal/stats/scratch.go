package stats

import "slices"

// sortFloat64s sorts in place without allocating (slices.Sort, unlike a
// sort.Interface round trip, never boxes).
func sortFloat64s(xs []float64) { slices.Sort(xs) }

// Scratch is a reusable buffer arena for the numeric kernels. The offline
// pipelines call FitPCA / MutualInformation / BinnedMI thousands of times
// per campaign with identically-shaped inputs; routing those calls through
// a Scratch reuses every intermediate buffer across calls, making the
// steady state allocation-free (gated by `make bench-alloc`).
//
// Ownership rules:
//
//   - A Scratch is single-owner: it is not safe for concurrent use. Each
//     parallel worker must hold its own (the profiler pools them).
//   - Results returned by Scratch methods (the *PCA, in particular) alias
//     the arena and are valid only until the next call on the same
//     Scratch. Callers that need to retain a result across calls must
//     copy it out — or use the package-level functions, which allocate a
//     fresh arena per call and therefore return independent results.
//   - The zero value is ready to use; buffers grow to the high-water mark
//     of the shapes seen and are then reused.
//
// Every kernel performs the exact floating-point operations of its
// package-level counterpart in the same order, so scratch-backed results
// are bit-identical to the allocating paths.
type Scratch struct {
	// FitPCA / FitPCASlab: the centered sample block lives in one
	// row-major slab so the blocked covariance kernel streams it with
	// register-blocked inner loops (see covApplySlab).
	mean     []float64
	centSlab []float64
	compRows [][]float64
	compSlab []float64
	vars     []float64
	w        []float64
	pca      PCA

	// MutualInformation: posterior grid plus the hoisted per-class
	// Gaussian constants (mean, 1/sigma, prior-scaled normalisation).
	priors []float64
	post   []float64
	mus    []float64
	invSig []float64
	scaled []float64

	// BinnedMI: the joint histogram slab and the Y marginal; the X
	// marginal is derived row by row inside the fused MI sweep.
	jointSlab []float64
	py        []float64

	// sortBuf backs copy-and-sort helpers (MedianOf / PercentileOf).
	sortBuf []float64
}

// grow returns buf resized to n elements, reusing its backing array when
// possible. Contents are unspecified; callers that accumulate must zero.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growRows is grow for slices of rows.
func growRows(buf [][]float64, n int) [][]float64 {
	if cap(buf) < n {
		return make([][]float64, n)
	}
	return buf[:n]
}

// MedianOf returns the median of xs without modifying it, staging the
// copy-and-sort in the arena's sort buffer.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (s *Scratch) MedianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s.sortBuf = grow(s.sortBuf, len(xs))
	copy(s.sortBuf, xs)
	sortFloat64s(s.sortBuf)
	return SortedMedian(s.sortBuf)
}

// PercentileOf returns the q-th percentile of xs without modifying it,
// staging the copy-and-sort in the arena's sort buffer.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocStatsScratch
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (s *Scratch) PercentileOf(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s.sortBuf = grow(s.sortBuf, len(xs))
	copy(s.sortBuf, xs)
	sortFloat64s(s.sortBuf)
	return SortedPercentile(s.sortBuf, q)
}
