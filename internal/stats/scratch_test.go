package stats

import (
	"math"
	"sort"
	"testing"

	"github.com/repro/aegis/internal/rng"
)

// testRows builds a deterministic sample matrix with correlated structure.
func testRows(r *rng.Source, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		base := r.Gaussian(0, 2)
		for j := range row {
			row[j] = base*float64(j%5) + r.Gaussian(0, 1)
		}
		rows[i] = row
	}
	return rows
}

// TestScratchFitPCAEquivalence pins the scratch-staged PCA bit-identically
// against the allocating path, including across reuses of the same arena
// with different shapes.
func TestScratchFitPCAEquivalence(t *testing.T) {
	r := rng.New(42).Split("scratch-pca")
	s := &Scratch{}
	for _, shape := range []struct{ n, d, k int }{
		{8, 12, 1}, {30, 40, 3}, {8, 12, 2}, {5, 3, 1},
	} {
		rows := testRows(r, shape.n, shape.d)
		want, err := FitPCA(rows, shape.k)
		if err != nil {
			t.Fatalf("FitPCA(%v): %v", shape, err)
		}
		got, err := s.FitPCA(rows, shape.k)
		if err != nil {
			t.Fatalf("Scratch.FitPCA(%v): %v", shape, err)
		}
		for j := range want.Mean {
			if math.Float64bits(got.Mean[j]) != math.Float64bits(want.Mean[j]) {
				t.Fatalf("shape %v: mean[%d] = %v, want %v", shape, j, got.Mean[j], want.Mean[j])
			}
		}
		if len(got.Components) != len(want.Components) {
			t.Fatalf("shape %v: %d components, want %d", shape, len(got.Components), len(want.Components))
		}
		for c := range want.Components {
			if math.Float64bits(got.Variances[c]) != math.Float64bits(want.Variances[c]) {
				t.Fatalf("shape %v: variance[%d] = %v, want %v", shape, c, got.Variances[c], want.Variances[c])
			}
			for j := range want.Components[c] {
				if math.Float64bits(got.Components[c][j]) != math.Float64bits(want.Components[c][j]) {
					t.Fatalf("shape %v: component[%d][%d] = %v, want %v",
						shape, c, j, got.Components[c][j], want.Components[c][j])
				}
			}
		}
	}
}

// TestFirstComponentMatchesTransform pins the allocation-free projection
// against the general Transform.
func TestFirstComponentMatchesTransform(t *testing.T) {
	r := rng.New(7).Split("first-comp")
	rows := testRows(r, 20, 16)
	p, err := FitPCA(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		tr, err := p.Transform(row)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := p.FirstComponent(row)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(fc) != math.Float64bits(tr[0]) {
			t.Fatalf("row %d: FirstComponent = %v, Transform[0] = %v", i, fc, tr[0])
		}
	}
	if _, err := p.FirstComponent(rows[0][:3]); err == nil {
		t.Fatal("FirstComponent accepted a short row")
	}
}

// TestScratchMIEquivalence pins scratch-staged MutualInformation and
// BinnedMI bit-identically against the allocating paths.
func TestScratchMIEquivalence(t *testing.T) {
	s := &Scratch{}
	for _, nc := range []int{2, 5, 9} {
		classes := make([]ClassModel, nc)
		for i := range classes {
			classes[i] = ClassModel{
				Secret: string(rune('a' + i)),
				Prior:  float64(i + 1),
				Dist:   Gaussian{Mu: float64(i) * 1.5, Sigma: 0.5 + 0.3*float64(i)},
			}
		}
		want, err := MutualInformation(classes, 300)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.MutualInformation(classes, 300)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("nc=%d: scratch MI = %v, want %v", nc, got, want)
		}
	}

	r := rng.New(9).Split("binned")
	for _, bins := range []int{4, 16, 8} {
		xs := make([]float64, 400)
		ys := make([]float64, 400)
		for i := range xs {
			xs[i] = r.Gaussian(0, 1)
			ys[i] = xs[i]*0.7 + r.Gaussian(0, 0.5)
		}
		want, err := BinnedMI(xs, ys, bins)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.BinnedMI(xs, ys, bins)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("bins=%d: scratch BinnedMI = %v, want %v", bins, got, want)
		}
	}
}

// TestSortedFastPathEquivalence pins SortedPercentile/SortedMedian and the
// arena's MedianOf/PercentileOf against the copy-and-sort originals.
func TestSortedFastPathEquivalence(t *testing.T) {
	r := rng.New(11).Split("sorted")
	s := &Scratch{}
	for _, n := range []int{1, 2, 7, 100, 101} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Gaussian(5, 20)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []float64{-1, 0, 0.3, 25, 50, 99.9, 100, 150} {
			want := Percentile(xs, q)
			if got := SortedPercentile(sorted, q); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d q=%v: SortedPercentile = %v, Percentile = %v", n, q, got, want)
			}
			if got := s.PercentileOf(xs, q); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d q=%v: PercentileOf = %v, Percentile = %v", n, q, got, want)
			}
		}
		wantMed := Median(xs)
		if got := SortedMedian(sorted); math.Float64bits(got) != math.Float64bits(wantMed) {
			t.Fatalf("n=%d: SortedMedian = %v, Median = %v", n, got, wantMed)
		}
		if got := s.MedianOf(xs); math.Float64bits(got) != math.Float64bits(wantMed) {
			t.Fatalf("n=%d: MedianOf = %v, Median = %v", n, got, wantMed)
		}
	}
	if SortedMedian(nil) != 0 || SortedPercentile(nil, 50) != 0 {
		t.Fatal("empty-input fast paths should return 0")
	}
}
