package aegis_test

import (
	"fmt"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/workload"
)

// Example runs the minimal Aegis pipeline: fuzz gadgets for the four
// monitored events, launch a SEV guest, and protect it with the Laplace
// mechanism. All stages are seeded, so the output is deterministic.
func Example() {
	fw, err := aegis.New(aegis.Config{Seed: 1, FuzzCandidates: 150})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	gadgets, err := fw.Fuzz([]string{"RETIRED_UOPS", "LS_DISPATCH"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	world := sev.NewWorld(sev.DefaultConfig(1))
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	obf, err := fw.Protect(vm, 0, gadgets, aegis.MechanismLaplace, 1.0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	world.Run(30)

	fmt.Printf("platform: %s\n", fw.Catalog().Processor)
	fmt.Printf("protected events: %d, gadget cover: %d\n", len(gadgets.Events), gadgets.CoverSize)
	fmt.Printf("noise injected: %v\n", obf.InjectedReps() > 0)
	// Output:
	// platform: AMD EPYC 7252
	// protected events: 2, gadget cover: 1
	// noise injected: true
}

// ExampleFramework_Profile shows the Application Profiler stage on a small
// secret set.
func ExampleFramework_Profile() {
	fw, err := aegis.New(aegis.Config{
		Seed:              1,
		ProfileTraceTicks: 40,
		ProfileRepeats:    3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	app := &workload.WebsiteApp{Sites: []string{"google.com", "youtube.com"}}
	profile, err := fw.Profile(app)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("catalog events: %d\n", profile.TotalEvents)
	fmt.Printf("events responding to the app: %v\n", profile.WarmupRemaining > 50)
	fmt.Printf("top-1 exists: %v\n", len(profile.Top(1)) == 1)
	// Output:
	// catalog events: 1903
	// events responding to the app: true
	// top-1 exists: true
}
