module github.com/repro/aegis

go 1.22
