package aegis

// Hot-path micro-benchmarks with allocation reporting. These are the
// substrate paths the obfuscator's online budget and the offline pipelines'
// wall-clock ride on; `make bench-alloc` gates their steady-state allocation
// behaviour (see alloc_gate_test.go), and this file tracks their ns/op and
// allocs/op in EXPERIMENTS.md. Run with:
//
//	go test -bench='RDPMC|WorldStep|ObfuscatorTick|FitPCA|MutualInformation' -benchmem -run=^$ .

import (
	"testing"

	"github.com/repro/aegis/internal/benchkit"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/stats"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/workload"
)

// disableTelemetry turns the default registry off for the benchmark and
// restores it afterwards. Hot-path benchmarks run in the experiment
// harness's `-telemetry=false` configuration; with the registry enabled,
// each obfuscator tick additionally allocates one tracing span, which is
// the cost of observability rather than of the substrate.
func disableTelemetry(b *testing.B) {
	b.Helper()
	reg := telemetry.Default()
	was := reg.Enabled()
	reg.SetEnabled(false)
	b.Cleanup(func() { reg.SetEnabled(was) })
}

// BenchmarkRDPMC measures one noisy counter read — the innermost operation
// of the fuzzer's measurement loop and the obfuscator's kernel module.
func BenchmarkRDPMC(b *testing.B) {
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	pmu := hpc.NewPMU(core, rng.New(3).Split("pmu"))
	cat := hpc.NewAMDEpyc7252Catalog(1)
	if err := pmu.Program(0, cat.MustByName("RETIRED_UOPS")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pmu.RDPMC(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldStep measures one scheduler tick of a 1-vCPU guest running
// the website workload — the per-tick cost every experiment pays per sample.
func BenchmarkWorldStep(b *testing.B) {
	world := sev.NewWorld(sev.DefaultConfig(4))
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		b.Fatal(err)
	}
	runner := workload.NewRunner("bench", workload.DefaultLibrary(1), rng.New(5).Split("r"))
	if err := vm.AddProcess(0, runner); err != nil {
		b.Fatal(err)
	}
	world.Run(8) // settle into the idle steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world.Step()
	}
}

// benchSegment returns a small stacked gadget segment (load-class reset and
// trigger variants) for obfuscator benchmarks and allocation gates.
func benchSegment(tb testing.TB) []isa.Variant {
	tb.Helper()
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	var seg []isa.Variant
	for _, v := range legal {
		if v.Class == isa.ClassLoad || v.Class == isa.ClassFlush {
			seg = append(seg, v)
		}
		if len(seg) == 4 {
			break
		}
	}
	if len(seg) == 0 {
		tb.Fatal("no load/flush variants in legal list")
	}
	return seg
}

// BenchmarkObfuscatorTick measures one full obfuscator tick (kernel-module
// read for observation-based mechanisms, noise draw, clip, gadget injection)
// driven through World.Step, per mechanism.
func BenchmarkObfuscatorTick(b *testing.B) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ref := cat.MustByName("RETIRED_UOPS")
	seg := benchSegment(b)
	for _, mechName := range []string{"laplace", "dstar"} {
		b.Run(mechName, func(b *testing.B) {
			disableTelemetry(b)
			var mech obfuscator.Mechanism
			var err error
			switch mechName {
			case "laplace":
				mech, err = obfuscator.NewLaplaceMechanism(1, 1500, rng.New(6).Split("lap"))
			case "dstar":
				mech, err = obfuscator.NewDStarMechanism(1, 1500, rng.New(7).Split("dstar"))
			}
			if err != nil {
				b.Fatal(err)
			}
			obf, err := obfuscator.New(obfuscator.Config{
				Mechanism: mech,
				Segment:   seg,
				RefEvent:  ref,
				ClipBound: 20000,
				Seed:      11,
			})
			if err != nil {
				b.Fatal(err)
			}
			world := sev.NewWorld(sev.DefaultConfig(9))
			vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
			if err != nil {
				b.Fatal(err)
			}
			if err := vm.AddProcess(0, obf); err != nil {
				b.Fatal(err)
			}
			world.Run(8) // attach the kernel module, settle the caches
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				world.Step()
			}
		})
	}
}

// BenchmarkFitPCA measures one PCA fit over a trace population of the
// profiler's ranking shape (secrets*repeats traces x TraceTicks features):
// the one-shot public path, the arena-reusing row-view path, and the
// contiguous-slab path the profiler's scoring loop feeds the blocked
// covariance kernel through. Fixtures come from internal/benchkit so the
// aegis-bench per-kernel harness measures exactly the same work.
func BenchmarkFitPCA(b *testing.B) {
	rows := benchkit.PCARows(72, 150)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := stats.FitPCA(rows, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var s stats.Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.FitPCA(rows, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("slab", func(b *testing.B) {
		slab := benchkit.PCASlab(72, 150)
		var s stats.Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.FitPCASlab(slab, 72, 150, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBinnedMI measures one 2-D histogram MI estimate at the Fig. 9c
// shape (400 paired samples, 16 bins), in both the one-shot and
// arena-reusing forms.
func BenchmarkBinnedMI(b *testing.B) {
	xs, ys := benchkit.BinnedPairs(400)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := stats.BinnedMI(xs, ys, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var s stats.Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.BinnedMI(xs, ys, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMutualInformation measures one MI quadrature over six secret
// classes at the profiler's default grid resolution, in both the one-shot
// and arena-reusing forms.
func BenchmarkMutualInformation(b *testing.B) {
	classes := benchkit.MIClasses(6)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := stats.MutualInformation(classes, 600); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		var s stats.Scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.MutualInformation(classes, 600); err != nil {
				b.Fatal(err)
			}
		}
	})
}
