package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/repro/aegis/internal/daemon"
	"github.com/repro/aegis/internal/daemon/daemontest"
)

// TestDaemonSmoke boots a real aegisd — fuzzed plan, ticker-driven loop,
// ops server on a loopback port — and drives it over HTTP: readiness,
// tenant attach, work submission and the control-API status, then waits
// for the -ticks bound to stop it cleanly.
func TestDaemonSmoke(t *testing.T) {
	addrCh := make(chan string, 1)
	opsAddrNotify = func(addr string) { addrCh <- addr }
	defer func() { opsAddrNotify = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-events", "RETIRED_UOPS",
			"-candidates", "60",
			"-tenants", "2",
			"-ticks", "400",
			"-tick-interval", "2ms",
			"-queue-cap", "4",
			"-seed", "3",
		})
	}()

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not come up in 60s")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(out)
	}

	if code, body := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d: %s", code, body)
	}
	if code, body := get("/ctl/v1/tenants"); code != 200 || !strings.Contains(body, `"t000"`) {
		t.Fatalf("pre-attached tenants missing: %d %s", code, body)
	}
	if code, body := post("/ctl/v1/attach", `{"name":"smoke","app":"keystroke","secrets":3}`); code != 200 {
		t.Fatalf("attach = %d: %s", code, body)
	}
	if code, body := post("/ctl/v1/submit", `{"name":"smoke","jobs":2}`); code != 200 {
		t.Fatalf("submit = %d: %s", code, body)
	}
	if code, body := post("/ctl/v1/reload", `{"epsilon": 2.0}`); code != 200 {
		t.Fatalf("reload = %d: %s", code, body)
	}
	if code, body := post("/ctl/v1/reload", `{"epsilon": -2.0}`); code != 400 {
		t.Fatalf("invalid reload = %d, want 400: %s", code, body)
	}
	code, body := get("/ctl/v1/daemon")
	if code != 200 {
		t.Fatalf("/ctl/v1/daemon = %d: %s", code, body)
	}
	var resp struct {
		Schema string `json:"schema"`
		Daemon struct {
			Tenants       int `json:"tenants"`
			ReloadRejects int `json:"reload_rejects_total"`
		} `json:"daemon"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("daemon status not JSON: %v\n%s", err, body)
	}
	if resp.Schema != "aegisd-ctl/v1" || resp.Daemon.Tenants != 3 || resp.Daemon.ReloadRejects != 1 {
		t.Fatalf("daemon status: %s", body)
	}
	if code, body := get("/flight?kind=daemon"); code != 200 || !strings.Contains(body, "tenant:attach") {
		t.Fatalf("/flight = %d: %s", code, body)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not stop at the -ticks bound")
	}
}

// TestReloadFromFile covers the SIGHUP config path without signals: a
// good file stages, a bad one is rejected whole.
func TestReloadFromFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(good, []byte(`{"mechanism":"dstar","epsilon":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(`{"mechanismm":"dstar"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(daemontest.BaseConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := reloadFromFile(d, good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if !d.Status().PendingReload {
		t.Fatal("good config not staged")
	}
	if err := reloadFromFile(d, bad); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := reloadFromFile(d, ""); err == nil {
		t.Fatal("empty path accepted")
	}
}
