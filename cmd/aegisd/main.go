// Command aegisd is the multi-tenant protection daemon: one offline fuzz
// campaign builds a shared gadget plan, then a fleet of tenant VMs — each
// running its application plus a per-tenant obfuscator — is driven off a
// single tick loop. Operators steer it over the aegisd-ctl/v1 JSON API
// mounted on the ops surface (attach/detach tenants, submit work, live
// reload) and observe it through /metrics, /readyz and the daemon's
// deterministic flight journal on /flight.
//
// Usage:
//
//	aegisd -addr :9144 [flags]
//
// The daemon owns the tick loop but the wall clock lives only here:
// -tick-interval paces Step calls, so everything below cmd/ stays
// deterministic and seed-replayable. SIGHUP re-reads -config (a JSON
// tunables delta) and stages it atomically at the next tick boundary;
// SIGINT/SIGTERM shut down gracefully.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/daemon"
	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/ops"
	"github.com/repro/aegis/internal/workload"
)

// opsAddrNotify, when set (by tests), receives the bound ops address as
// soon as the server is up.
var opsAddrNotify func(addr string)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aegisd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aegisd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":9144", "ops + control-API listen address")
		appName      = fs.String("app", "website", "default tenant application: website | keystroke | dnn")
		mechanism    = fs.String("mechanism", daemon.MechanismLaplace, "noise mechanism: laplace | dstar | random | constant")
		epsilon      = fs.Float64("epsilon", 1.0, "privacy budget (or bound/peak for baselines)")
		seed         = fs.Uint64("seed", 1, "daemon seed; every tenant seed derives from it")
		eventsFlag   = fs.String("events", "", "comma-separated HPC events to protect (skips profiling)")
		topEvents    = fs.Int("top", 4, "without -events: number of profiled events to protect")
		secrets      = fs.Int("secrets", 4, "per-tenant secret alphabet size")
		candidates   = fs.Int("candidates", 400, "fuzzing candidates per event")
		tenants      = fs.Int("tenants", 0, "tenants to attach at startup (named t000, t001, ...)")
		tickInterval = fs.Duration("tick-interval", 50*time.Millisecond, "wall-clock pacing of the protection tick loop")
		ticks        = fs.Int("ticks", 0, "stop after this many ticks (0 = run until SIGINT/SIGTERM)")
		queueCap     = fs.Int("queue-cap", 64, "per-tenant work queue capacity")
		maxItems     = fs.Int("max-items-per-tick", 8, "queued jobs applied per tenant per tick")
		loadPerTick  = fs.Int("load-per-tick", 0, "internal load generator: jobs enqueued per tenant per tick")
		parallelism  = fs.Int("parallelism", 0, "tenant tick fan-out goroutines (<= 1 = serial; journal is identical either way)")
		faultsFlag   = fs.String("faults", faultinject.PresetOff, "substrate fault preset: off | light | heavy (deterministic, seed-derived)")
		configPath   = fs.String("config", "", "JSON tunables file re-read on SIGHUP and staged as a live reload")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	faults, err := faultinject.Preset(*faultsFlag, *seed)
	if err != nil {
		return err
	}
	fw, err := aegis.New(aegis.Config{Seed: *seed, FuzzCandidates: *candidates, Faults: faults})
	if err != nil {
		return err
	}
	defer fw.Close()

	// One shared protection plan for the whole fleet: explicit events, or
	// a profiling pass over the default application.
	var events []string
	if *eventsFlag != "" {
		for _, e := range strings.Split(*eventsFlag, ",") {
			if e = strings.TrimSpace(e); e != "" {
				events = append(events, e)
			}
		}
	} else {
		app, err := pickApp(*appName, *secrets)
		if err != nil {
			return err
		}
		fmt.Printf("profiling %q to select events (use -events to skip)...\n", app.Name())
		profile, err := fw.Profile(app)
		if err != nil {
			return err
		}
		events = profile.Top(*topEvents)
	}
	fmt.Printf("fuzzing gadget plan for %d event(s): %s\n", len(events), strings.Join(events, ", "))
	gadgets, err := fw.Fuzz(events)
	if err != nil {
		return err
	}
	fmt.Printf("plan: %d gadgets, %d instructions stacked\n", gadgets.CoverSize, gadgets.SegmentLen)

	d, err := daemon.New(daemon.Config{
		Segment:         gadgets.Segment(),
		RefEvent:        gadgets.RefEvent(),
		Mechanism:       *mechanism,
		Epsilon:         *epsilon,
		QueueCapacity:   *queueCap,
		MaxItemsPerTick: *maxItems,
		LoadPerTick:     *loadPerTick,
		Parallelism:     *parallelism,
		Seed:            *seed,
		Faults:          faults,
	})
	if err != nil {
		return err
	}
	for i := 0; i < *tenants; i++ {
		spec := daemon.AttachSpec{Name: fmt.Sprintf("t%03d", i), App: *appName, Secrets: *secrets}
		if err := d.Attach(spec); err != nil {
			return err
		}
	}

	srv := ops.NewServer(ops.Config{Addr: *addr, Recorder: d.Journal()})
	srv.RegisterReadiness(d.ReadyProbe())
	srv.RegisterHealth(d.HealthProbe())
	srv.Mount(daemon.CtlPrefix, "ctl", d.CtlHandler())
	bound, err := srv.Start()
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("aegisd: control API http://%s%s (ops: healthz readyz metrics flight snapshot)\n",
		bound, daemon.CtlPrefix)
	if opsAddrNotify != nil {
		opsAddrNotify(bound)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	// The wall clock stops here: everything below cmd/ sees only Step().
	ticker := time.NewTicker(*tickInterval)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-ticker.C:
			d.Step()
			if *ticks > 0 && d.Tick() >= int64(*ticks) {
				break loop
			}
		case <-hup:
			if err := reloadFromFile(d, *configPath); err != nil {
				fmt.Fprintln(os.Stderr, "aegisd: reload:", err)
			} else {
				fmt.Println("aegisd: reload staged from", *configPath)
			}
		case s := <-stop:
			fmt.Printf("aegisd: %v, shutting down\n", s)
			break loop
		}
	}

	st := d.Status()
	fmt.Printf("aegisd: stopped at tick %d — %d tenants, %d enqueued / %d processed / %d shed, %d degraded tenant ticks\n",
		st.Tick, st.Tenants, st.Enqueued, st.Processed, st.Shed, st.DegradedTenantTicks)
	return nil
}

// pickApp builds the profiling application for event selection.
func pickApp(name string, secrets int) (workload.App, error) {
	switch name {
	case "website":
		sites := workload.Websites()
		if secrets > 0 && secrets < len(sites) {
			sites = sites[:secrets]
		}
		return &workload.WebsiteApp{Sites: sites}, nil
	case "keystroke":
		maxKeys := secrets
		if maxKeys <= 0 || maxKeys > 10 {
			maxKeys = 10
		}
		return &workload.KeystrokeApp{MaxKeys: maxKeys}, nil
	case "dnn":
		return &workload.DNNApp{}, nil
	default:
		return nil, fmt.Errorf("unknown app %q (want website, keystroke or dnn)", name)
	}
}

// reloadFromFile reads a JSON tunables delta and stages it; unknown
// fields and invalid values reject the whole delta (the old config stays
// live), mirroring POST /ctl/v1/reload.
func reloadFromFile(d *daemon.Daemon, path string) error {
	if path == "" {
		return fmt.Errorf("no -config file to reload")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var tun daemon.Tunables
	if err := dec.Decode(&tun); err != nil {
		return fmt.Errorf("bad tunables in %s: %w", path, err)
	}
	return d.Reload(tun)
}
