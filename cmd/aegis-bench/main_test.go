package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseGomaxprocsList(t *testing.T) {
	cases := []struct {
		in     string
		numCPU int
		want   []int
		err    bool
	}{
		{"0", 8, []int{8}, false},
		{"1,4,0", 4, []int{1, 4}, false},
		{"1,4,0", 16, []int{1, 4, 16}, false},
		{"1,1,1", 2, []int{1}, false},
		{"", 4, nil, true},
		{"x", 4, nil, true},
		{"-1", 4, nil, true},
	}
	for _, c := range cases {
		got, err := parseGomaxprocsList(c.in, c.numCPU)
		if c.err != (err != nil) {
			t.Fatalf("parseGomaxprocsList(%q, %d) err = %v, want err=%v", c.in, c.numCPU, err, c.err)
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Fatalf("parseGomaxprocsList(%q, %d) = %v, want %v", c.in, c.numCPU, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("parseGomaxprocsList(%q, %d) = %v, want %v", c.in, c.numCPU, got, c.want)
			}
		}
	}
}

func TestParseFloors(t *testing.T) {
	got, err := parseFloors("table2=1.5, table3=2")
	if err != nil {
		t.Fatal(err)
	}
	if got["table2"] != 1.5 || got["table3"] != 2 {
		t.Fatalf("parseFloors = %v", got)
	}
	if got, err := parseFloors(""); err != nil || got != nil {
		t.Fatalf("parseFloors(\"\") = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"table2", "=1.5", "table2=x", "table2=0.5"} {
		if _, err := parseFloors(bad); err == nil {
			t.Fatalf("parseFloors(%q) accepted", bad)
		}
	}
}

// writeBaseline marshals a report to a temp file for checkRegression.
func writeBaseline(t *testing.T, r benchReport) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeReport(path, r); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckRegressionV1Compat pins the v1-baseline reading path: v1 runs
// carry no per-run gomaxprocs, so the top-level value keys them, and a
// fresh v2 run at the same width compares against them.
func TestCheckRegressionV1Compat(t *testing.T) {
	base := benchReport{
		Schema:     "aegis-bench/v1",
		GOMAXPROCS: 1,
		Runs: []benchRun{
			{Parallelism: 1, Entries: []benchEntry{{Name: "table2", WallSeconds: 1.0}}},
			{Parallelism: 4, Entries: []benchEntry{{Name: "table2", WallSeconds: 0.8}}},
		},
	}
	path := writeBaseline(t, base)
	fresh := benchReport{
		Schema:     benchSchema,
		GOMAXPROCS: 1,
		Runs: []benchRun{
			{Parallelism: 1, GOMAXPROCS: 1, NumCPU: 1, Entries: []benchEntry{{Name: "table2", WallSeconds: 1.1}}},
			{Parallelism: 4, GOMAXPROCS: 1, NumCPU: 1, Entries: []benchEntry{{Name: "table2", WallSeconds: 0.85}}},
		},
	}
	if err := checkRegression(path, fresh, 1); err != nil {
		t.Fatalf("within tolerance against v1 baseline: %v", err)
	}
	fresh.Runs[0].Entries[0].WallSeconds = 1.5 // 50% slower
	if err := checkRegression(path, fresh, 1); err == nil || !strings.Contains(err.Error(), "table2") {
		t.Fatalf("want table2 regression, got %v", err)
	}
	// A fresh run at a width the v1 baseline never measured has nothing
	// to compare and must say so rather than silently pass.
	wide := benchReport{
		Schema: benchSchema,
		Runs: []benchRun{
			{Parallelism: 1, GOMAXPROCS: 8, Entries: []benchEntry{{Name: "table2", WallSeconds: 0.4}}},
		},
	}
	if err := checkRegression(path, wide, 8); err == nil || !strings.Contains(err.Error(), "no comparable entries") {
		t.Fatalf("want no-comparable-entries error, got %v", err)
	}
}

// TestCheckRegressionKernels pins the per-kernel gates: >20% ns/op
// regressions and any allocs/op increase fail; matching entries pass.
func TestCheckRegressionKernels(t *testing.T) {
	base := benchReport{
		Schema: benchSchema,
		KernelRuns: []kernelRun{{
			GOMAXPROCS: 1,
			Kernels: []kernelEntry{
				{Name: "fitpca", NsPerOp: 50000, AllocsPerOp: 0},
				{Name: "binnedmi", NsPerOp: 2500, AllocsPerOp: 0},
			},
		}},
	}
	path := writeBaseline(t, base)
	fresh := base
	fresh.KernelRuns = []kernelRun{{
		GOMAXPROCS: 1,
		Kernels: []kernelEntry{
			{Name: "fitpca", NsPerOp: 55000, AllocsPerOp: 0},
			{Name: "binnedmi", NsPerOp: 2400, AllocsPerOp: 0},
		},
	}}
	if err := checkRegression(path, fresh, 1); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	fresh.KernelRuns[0].Kernels[0].NsPerOp = 70000 // 40% slower
	if err := checkRegression(path, fresh, 1); err == nil || !strings.Contains(err.Error(), "fitpca") {
		t.Fatalf("want fitpca ns/op regression, got %v", err)
	}
	fresh.KernelRuns[0].Kernels[0].NsPerOp = 50000
	fresh.KernelRuns[0].Kernels[1].AllocsPerOp = 2
	if err := checkRegression(path, fresh, 1); err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("want binnedmi allocs/op regression, got %v", err)
	}
}

// TestCheckRegressionScalingFloors pins the floor gate: it only engages on
// hosts with at least 4 CPUs, compares fresh speedups against the
// baseline's committed floors, and skips loudly otherwise.
func TestCheckRegressionScalingFloors(t *testing.T) {
	base := benchReport{
		Schema:        benchSchema,
		ScalingFloors: map[string]float64{"table2": 1.5},
		Runs: []benchRun{
			{Parallelism: 1, GOMAXPROCS: 4, Entries: []benchEntry{{Name: "table2", WallSeconds: 1.0}}},
		},
	}
	path := writeBaseline(t, base)
	fresh := benchReport{
		Schema: benchSchema,
		Runs: []benchRun{
			{Parallelism: 1, GOMAXPROCS: 4, Entries: []benchEntry{{Name: "table2", WallSeconds: 1.0}}},
		},
		Speedups: map[string]float64{"table2": 1.2},
	}
	// 1-CPU host: the floor gate must skip, leaving only the passing
	// wall-clock comparison.
	if err := checkRegression(path, fresh, 1); err != nil {
		t.Fatalf("floor gate should skip on 1 CPU: %v", err)
	}
	// 8-CPU host: 1.2x is below the committed 1.5x floor.
	if err := checkRegression(path, fresh, 8); err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Fatalf("want scaling floor regression, got %v", err)
	}
	fresh.Speedups["table2"] = 1.7
	if err := checkRegression(path, fresh, 8); err != nil {
		t.Fatalf("above floor: %v", err)
	}
}

// TestReportRoundTrip pins the v2 document shape through write/read.
func TestReportRoundTrip(t *testing.T) {
	r := benchReport{
		Schema:        benchSchema,
		GOMAXPROCS:    4,
		NumCPU:        4,
		ScalingFloors: map[string]float64{"table3": 1.5},
		Runs: []benchRun{
			{Parallelism: 2, GOMAXPROCS: 4, NumCPU: 4,
				Entries: []benchEntry{{Name: "table3", WallSeconds: 0.5, Items: 100, Throughput: 200}}},
		},
		KernelRuns: []kernelRun{{GOMAXPROCS: 4, NumCPU: 4,
			Kernels: []kernelEntry{{Name: "fitpca", NsPerOp: 50000}}}},
		Speedups: map[string]float64{"table3": 1.6},
	}
	path := writeBaseline(t, r)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"schema": "aegis-bench/v2"`, `"gomaxprocs": 4`, `"numcpu": 4`,
		`"kernel_runs"`, `"ns_per_op"`, `"scaling_floors"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report JSON missing %s", want)
		}
	}
	// checkRegression must accept its own output as a baseline.
	if err := checkRegression(path, r, 4); err != nil {
		t.Fatalf("self-comparison: %v", err)
	}
}
