// Command aegis-bench regenerates the paper's tables and figures on the
// simulated SEV platform and prints the rows/series the paper reports.
//
// Usage:
//
//	aegis-bench [-only table1,figure9a,...] [-scale test|eval] [-seed N]
//	            [-parallelism N[,M,...]] [-gomaxprocs N[,M,...]]
//	            [-bench-json PATH] [-bench-check BASELINE]
//	            [-scaling-floors name=MIN,...] [-kernels=BOOL]
//	            [-serial] [-flight PATH]
//	            [-store DIR] [-store-compare] [-store-assert]
//	            [-cpuprofile PATH] [-memprofile PATH]
//
// Without -only, every experiment runs in paper order. The eval scale
// matches the values recorded in EXPERIMENTS.md; the test scale is a quick
// smoke run.
//
// -parallelism bounds the worker pools inside the fuzzing and profiling
// pipelines (0 = GOMAXPROCS). A comma-separated list runs the selected
// experiments once per value — a benchmark trajectory — and reports the
// speedup of the last value over the first. Results are byte-identical at
// every value; only wall-clock time changes.
//
// -gomaxprocs runs that trajectory once per scheduler width (0 = NumCPU;
// duplicates after resolving 0 collapse). Every run entry in the report
// records the gomaxprocs and numcpu it executed under, so a committed
// BENCH_*.json is self-describing about the host it was measured on — a
// 1-vCPU container's numbers are never mistaken for multi-core scaling.
//
// -bench-json writes per-experiment wall-clock (and throughput, where the
// experiment exposes a work-item count) to PATH as an aegis-bench/v2
// document. Timing runs also measure the internal/benchkit hot-path
// kernels (PCA fit, MI estimators, DP draw paths) once per gomaxprocs
// value, recording ns/op and allocs/op per kernel (disable with
// -kernels=false). -bench-check re-runs the same experiments and fails if
// any experiment is more than 20% slower than the entries recorded in
// BASELINE (v1 or v2), if any kernel is more than 20% slower or allocates
// more per op, or — on hosts with at least 4 CPUs — if a trajectory
// speedup drops below the baseline's committed scaling floors
// (-scaling-floors commits them into a fresh report). Timing runs imply
// serial job execution so timings are not polluted by sibling
// experiments; otherwise independent experiments run concurrently
// (disable with -serial).
//
// -flight writes the flight recorder's journal to PATH as aegis-flight/v1
// JSONL, one labelled dump per experiment as it completes. It implies
// serial job execution: the recorder is process-global, so concurrent
// experiments would interleave their records.
//
// -store DIR backs the profiling and fuzzing pipelines with the versioned
// artifact store rooted at DIR: campaign shards checkpoint there and
// matching shards resume on later runs. Results are byte-identical with
// or without the store. -store-compare runs the selected experiments
// twice against the store — a cold pass and a warm pass — and reports
// per-pass wall-clock, the warm speedup and the store's hit rates;
// -store-assert additionally fails the process unless the warm pass hit
// the cache and was strictly faster (the CI warm-cache gate).
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (the heap profile is taken after a final GC, so it shows
// retained memory rather than transient garbage). Combine with -serial and
// a single -parallelism value when attributing costs to one pipeline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/repro/aegis/internal/artifact"
	"github.com/repro/aegis/internal/benchkit"
	"github.com/repro/aegis/internal/experiment"
	"github.com/repro/aegis/internal/ops"
	"github.com/repro/aegis/internal/parallel"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aegis-bench:", err)
		os.Exit(1)
	}
}

type job struct {
	name string
	// run returns the rendered result and the number of work items the
	// experiment processed (0 when the experiment has no natural unit);
	// items feed the throughput column of -bench-json.
	run func(experiment.Scale) (fmt.Stringer, int, error)
}

// renderable adapts experiment results to fmt.Stringer.
type renderable struct{ s string }

func (r renderable) String() string { return r.s }

func wrap(s string, err error) (fmt.Stringer, int, error) {
	return renderable{s: s}, 0, err
}

func jobs() []job {
	return []job{
		{"table1", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			return wrap(experiment.Table1().Render(), nil)
		}},
		{"table2", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Table2(sc)
			if err != nil {
				return nil, 0, err
			}
			items := 0
			for _, row := range res.Rows {
				items += row.TotalEvents
			}
			return renderable{s: res.Render()}, items, nil
		}},
		{"table3", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Table3(sc)
			if err != nil {
				return nil, 0, err
			}
			items := 0
			for _, row := range res.Rows {
				items += row.GadgetsTried
			}
			return renderable{s: res.Render()}, items, nil
		}},
		{"figure1", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure1(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure3", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure3(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure8", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure8(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure9a", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure9a(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure9b", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure9b(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure9c", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure9c(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure10", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure10(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure11", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure11(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"constant", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.ConstantOutputComparison(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"operating", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.FindOperatingPoints(sc, 0.25, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"multitries", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.MultipleTriesAnalysis(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"occupancy", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.CacheOccupancyExtension(sc, 0.125)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-cover", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.AblationSetCover(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-pca", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.AblationPCA(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-confirm", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.AblationConfirmation(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-buffer", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			return wrap(experiment.AblationNoiseBuffer(1<<20).Render(), nil)
		}},
		{"robustness", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Robustness(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
	}
}

// benchEntry records one experiment's timing within one trajectory run.
type benchEntry struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Items       int     `json:"items,omitempty"`
	// Throughput is items per second, present when Items > 0.
	Throughput float64 `json:"throughput,omitempty"`
}

// benchRun is one pass over the selected experiments at a fixed pipeline
// parallelism and scheduler width. GOMAXPROCS/NumCPU are recorded per run
// (not only at the top level) so every entry is self-describing about the
// execution environment it was timed under; v1 documents predate the
// fields and leave them 0 (bench-check fills them from the top level).
type benchRun struct {
	Parallelism int          `json:"parallelism"`
	GOMAXPROCS  int          `json:"gomaxprocs,omitempty"`
	NumCPU      int          `json:"numcpu,omitempty"`
	Entries     []benchEntry `json:"entries"`
}

// kernelEntry is one hot-path kernel's measured cost (internal/benchkit).
type kernelEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// kernelRun is one pass over the kernel suite at a fixed scheduler width.
type kernelRun struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	Kernels    []kernelEntry `json:"kernels"`
}

// benchReport is the -bench-json document (schema aegis-bench/v2;
// bench-check also reads v1 baselines, which lack per-run gomaxprocs,
// kernel runs and scaling floors).
type benchReport struct {
	Schema     string     `json:"schema"`
	Created    string     `json:"created"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"numcpu,omitempty"`
	Seed       uint64     `json:"seed"`
	Scale      string     `json:"scale"`
	Runs       []benchRun `json:"runs"`
	// KernelRuns holds the per-kernel micro-benchmark sections, one per
	// gomaxprocs value (timing runs only).
	KernelRuns []kernelRun `json:"kernel_runs,omitempty"`
	// Speedups maps experiment name to wall(first run)/wall(last run) of
	// the parallelism trajectory at the widest gomaxprocs value measured.
	Speedups map[string]float64 `json:"speedups,omitempty"`
	// ScalingFloors maps experiment name to the minimum trajectory
	// speedup a multi-core host (NumCPU >= 4) must reach; bench-check
	// gates fresh Speedups against the baseline's committed floors and
	// skips the gate — loudly — on hosts that cannot scale.
	ScalingFloors map[string]float64 `json:"scaling_floors,omitempty"`
}

const benchSchema = "aegis-bench/v2"

func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad %s value %q", flagName, part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty %s list", flagName)
	}
	return out, nil
}

func parseParallelismList(s string) ([]int, error) {
	return parseIntList("-parallelism", s)
}

// parseGomaxprocsList parses the -gomaxprocs list, resolving 0 to NumCPU
// and collapsing duplicates (order-preserving), so `1,4,0` on a 4-CPU host
// is {1, 4} and on a 16-CPU host {1, 4, 16}.
func parseGomaxprocsList(s string, numCPU int) ([]int, error) {
	raw, err := parseIntList("-gomaxprocs", s)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	var out []int
	for _, g := range raw {
		if g == 0 {
			g = numCPU
		}
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out, nil
}

// parseFloors parses `-scaling-floors table2=1.5,table3=1.5`.
func parseFloors(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		f, err := strconv.ParseFloat(val, 64)
		if !ok || name == "" || err != nil || f < 1 {
			return nil, fmt.Errorf("bad -scaling-floors entry %q (want name=MIN with MIN >= 1)", part)
		}
		out[name] = f
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("aegis-bench", flag.ContinueOnError)
	var (
		only     = fs.String("only", "", "comma-separated experiment names (default: all)")
		scale    = fs.String("scale", "eval", "scale: test | eval")
		seed     = fs.Uint64("seed", 1, "experiment seed")
		list     = fs.Bool("list", false, "list experiment names and exit")
		telem    = fs.Bool("telemetry", true, "print a telemetry summary after the run")
		para     = fs.String("parallelism", "0", "pipeline worker bound; comma-separated list runs a trajectory (0 = GOMAXPROCS)")
		gomax    = fs.String("gomaxprocs", "0", "scheduler widths to run the trajectory under; comma-separated (0 = NumCPU)")
		benchOut = fs.String("bench-json", "", "write wall-clock/throughput JSON to this path (implies serial jobs)")
		baseline = fs.String("bench-check", "", "compare a fresh run against this baseline JSON; fail on >20% regression")
		floorsIn = fs.String("scaling-floors", "", "trajectory speedup floors to commit into the report, e.g. table2=1.5,table3=1.5")
		kernels  = fs.Bool("kernels", true, "measure per-kernel ns/op and allocs/op in timing runs")
		serial   = fs.Bool("serial", false, "run experiments one at a time even when not benchmarking")
		flightTo = fs.String("flight", "", "write per-experiment aegis-flight/v1 JSONL dumps to this path (implies serial jobs)")
		storeDir = fs.String("store", "", "artifact store directory backing the offline pipelines (enables campaign resume)")
		storeCmp = fs.Bool("store-compare", false, "run the selected experiments twice against -store and report cold vs warm wall-clock and hit rates")
		storeChk = fs.Bool("store-assert", false, "with -store-compare: exit nonzero unless the warm pass hit the cache and was strictly faster")
		faults   = fs.String("faults", "", "fault preset for the robustness experiment: off | light | heavy (empty = sweep all)")
		cpuprof  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memprof  = fs.String("memprofile", "", "write a pprof heap profile (post-GC) to this path at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, j := range jobs() {
			fmt.Println(j.name)
		}
		return nil
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aegis-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "aegis-bench: memprofile:", err)
			}
		}()
	}
	var sc experiment.Scale
	switch *scale {
	case "test":
		sc = experiment.TestScale(*seed)
	case "eval":
		sc = experiment.EvalScale(*seed)
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	sc.FaultPreset = *faults
	parallelisms, err := parseParallelismList(*para)
	if err != nil {
		return err
	}
	gomaxes, err := parseGomaxprocsList(*gomax, runtime.NumCPU())
	if err != nil {
		return err
	}
	floors, err := parseFloors(*floorsIn)
	if err != nil {
		return err
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	var picked []job
	for _, j := range jobs() {
		if len(selected) == 0 || selected[j.name] {
			picked = append(picked, j)
		}
	}
	if len(picked) == 0 {
		return fmt.Errorf("no experiments matched %q", *only)
	}

	if *storeCmp && *storeDir == "" {
		return fmt.Errorf("-store-compare requires -store DIR")
	}
	if *storeChk && !*storeCmp {
		return fmt.Errorf("-store-assert requires -store-compare")
	}
	sc.ArtifactDir = *storeDir
	if *storeCmp {
		scp := sc
		scp.Parallelism = parallelisms[0]
		return runStoreCompare(picked, scp, *storeChk)
	}

	// Timing runs must not share the machine with sibling experiments,
	// and flight dumps need experiments serialised so each dump window
	// holds exactly one experiment's records.
	timing := *benchOut != "" || *baseline != ""
	concurrent := !timing && !*serial && *flightTo == "" && len(picked) > 1

	var flightFile *os.File
	if *flightTo != "" {
		f, err := os.Create(*flightTo)
		if err != nil {
			return fmt.Errorf("flight: %w", err)
		}
		flightFile = f
		defer flightFile.Close()
	}

	report := benchReport{
		Schema:     benchSchema,
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       *seed,
		Scale:      *scale,
	}
	if len(floors) > 0 {
		report.ScalingFloors = floors
	}
	prevGomax := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevGomax)
	matrix := len(gomaxes) > 1 || gomaxes[0] != prevGomax
	for _, g := range gomaxes {
		runtime.GOMAXPROCS(g)
		if timing && *kernels {
			kr := kernelRun{GOMAXPROCS: g, NumCPU: runtime.NumCPU()}
			fmt.Printf("=== kernels (gomaxprocs %d) ===\n", g)
			for _, res := range benchkit.MeasureAll() {
				kr.Kernels = append(kr.Kernels, kernelEntry{
					Name:        res.Name,
					NsPerOp:     res.NsPerOp,
					AllocsPerOp: res.AllocsPerOp,
					BytesPerOp:  res.BytesPerOp,
				})
				fmt.Printf("%-14s %12.1f ns/op %6d allocs/op %8d B/op\n",
					res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
			}
			fmt.Println()
			report.KernelRuns = append(report.KernelRuns, kr)
		}
		for _, p := range parallelisms {
			scp := sc
			scp.Parallelism = p
			if len(parallelisms) > 1 || matrix {
				fmt.Printf("=== gomaxprocs %d, parallelism %d ===\n\n", g, p)
			}
			run := benchRun{Parallelism: p, GOMAXPROCS: g, NumCPU: runtime.NumCPU()}
			type jobOut struct {
				text  string
				entry benchEntry
			}
			outs := make([]jobOut, len(picked))
			exec := func(_ context.Context, i int) (struct{}, error) {
				j := picked[i]
				start := time.Now()
				out, items, err := j.run(scp)
				if err != nil {
					return struct{}{}, fmt.Errorf("%s: %w", j.name, err)
				}
				wall := time.Since(start)
				e := benchEntry{Name: j.name, WallSeconds: wall.Seconds(), Items: items}
				if items > 0 && wall > 0 {
					e.Throughput = float64(items) / wall.Seconds()
				}
				outs[i] = jobOut{
					text:  fmt.Sprintf("=== %s ===\n%s\n(%s in %s)\n\n", j.name, out.String(), j.name, wall.Round(time.Millisecond)),
					entry: e,
				}
				return struct{}{}, nil
			}
			if concurrent {
				pool := parallel.NewPool("bench.jobs", 0)
				if _, err := parallel.Map(context.Background(), pool, len(picked), exec); err != nil {
					return err
				}
			} else {
				for i := range picked {
					before := flight.Default().Total()
					if _, err := exec(context.Background(), i); err != nil {
						return err
					}
					fmt.Print(outs[i].text)
					outs[i].text = ""
					if flightFile != nil {
						err := flight.Default().WriteJSONL(flightFile, flight.DumpOptions{
							Since: before, Label: picked[i].name,
						})
						if err != nil {
							return fmt.Errorf("flight: %w", err)
						}
					}
				}
			}
			for _, o := range outs {
				if o.text != "" {
					fmt.Print(o.text)
				}
				run.Entries = append(run.Entries, o.entry)
			}
			report.Runs = append(report.Runs, run)
		}
	}

	// Trajectory speedups: first vs. last parallelism at the widest
	// scheduler width measured (the last gomaxprocs group is what the
	// committed scaling floors gate on multi-core hosts).
	if len(parallelisms) > 1 {
		lastG := gomaxes[len(gomaxes)-1]
		var group []benchRun
		for _, r := range report.Runs {
			if r.GOMAXPROCS == lastG {
				group = append(group, r)
			}
		}
		if len(group) > 1 {
			report.Speedups = map[string]float64{}
			first, last := group[0], group[len(group)-1]
			for i, e := range first.Entries {
				if e.WallSeconds > 0 && last.Entries[i].WallSeconds > 0 {
					report.Speedups[e.Name] = e.WallSeconds / last.Entries[i].WallSeconds
				}
			}
			fmt.Printf("=== speedup (gomaxprocs %d, parallelism %d -> %d) ===\n",
				lastG, first.Parallelism, last.Parallelism)
			for _, e := range first.Entries {
				if s, ok := report.Speedups[e.Name]; ok {
					fmt.Printf("%-18s %.2fx\n", e.Name, s)
				}
			}
			fmt.Println()
		}
	}

	if *benchOut != "" {
		if err := writeReport(*benchOut, report); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
	if *baseline != "" {
		if err := checkRegression(*baseline, report, runtime.NumCPU()); err != nil {
			return err
		}
	}
	if *flightTo != "" {
		fmt.Printf("wrote flight journal to %s\n", *flightTo)
	}
	if *telem {
		fmt.Printf("=== telemetry ===\n%s", telemetry.Default().Summary())
		budget := ops.NewOverheadBudget(0)
		budget.SetSource(ops.TelemetrySource(telemetry.Default()))
		fmt.Println(budget.Status().Verdict())
	}
	return nil
}

// runStoreCompare measures what the artifact store buys the selected
// experiments: a cold pass and a warm pass against the same store, with
// the process-wide store counters diffed around each pass. Passes run
// serially — this is a timing measurement, like -bench-json. "Cold" means
// the first pass of this process against the given directory; point
// -store at an empty directory for a true cold start.
func runStoreCompare(picked []job, sc experiment.Scale, assert bool) error {
	pass := func(label string) (time.Duration, artifact.Stats, error) {
		fmt.Printf("=== store pass: %s ===\n", label)
		before := artifact.GlobalStats()
		start := time.Now()
		for _, j := range picked {
			jobStart := time.Now()
			if _, _, err := j.run(sc); err != nil {
				return 0, artifact.Stats{}, fmt.Errorf("%s (%s pass): %w", j.name, label, err)
			}
			fmt.Printf("%-18s %s\n", j.name, time.Since(jobStart).Round(time.Millisecond))
		}
		wall := time.Since(start)
		after := artifact.GlobalStats()
		fmt.Println()
		return wall, artifact.Stats{
			Hits:    after.Hits - before.Hits,
			Misses:  after.Misses - before.Misses,
			Writes:  after.Writes - before.Writes,
			Corrupt: after.Corrupt - before.Corrupt,
		}, nil
	}
	cold, coldStats, err := pass("cold")
	if err != nil {
		return err
	}
	warm, warmStats, err := pass("warm")
	if err != nil {
		return err
	}
	fmt.Printf("=== store (cold vs warm, %s) ===\n", sc.ArtifactDir)
	row := func(label string, wall time.Duration, s artifact.Stats) {
		total := s.Hits + s.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(s.Hits) / float64(total)
		}
		fmt.Printf("%-5s %12s  hits %5d  misses %5d  writes %5d  hit rate %5.1f%%\n",
			label, wall.Round(time.Millisecond), s.Hits, s.Misses, s.Writes, 100*rate)
	}
	row("cold", cold, coldStats)
	row("warm", warm, warmStats)
	if warm > 0 {
		fmt.Printf("warm speedup %.2fx\n", cold.Seconds()/warm.Seconds())
	}
	if assert {
		if warmStats.Hits == 0 {
			return fmt.Errorf("store-assert: warm pass recorded no cache hits")
		}
		if warm >= cold {
			return fmt.Errorf("store-assert: warm pass (%s) not faster than cold pass (%s)",
				warm.Round(time.Millisecond), cold.Round(time.Millisecond))
		}
	}
	return nil
}

func writeReport(path string, r benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runGomaxprocs returns a run's recorded scheduler width, falling back to
// the report-level value for v1 baselines (whose runs predate the field).
func runGomaxprocs(r benchRun, report benchReport) int {
	if r.GOMAXPROCS > 0 {
		return r.GOMAXPROCS
	}
	return report.GOMAXPROCS
}

// checkRegression compares a fresh report against a committed baseline
// (v1 or v2):
//
//   - any experiment more than 20% slower than the baseline entry with
//     the same (gomaxprocs, parallelism, name) fails;
//   - any kernel more than 20% slower in ns/op, or allocating more per
//     op, than the baseline kernel entry at the same gomaxprocs fails;
//   - on hosts with NumCPU >= 4, any fresh trajectory speedup below the
//     baseline's committed scaling floor fails. Hosts that cannot scale
//     skip the floor gate with an explicit message — a 1-vCPU container
//     must not silently "pass" a multi-core bar it never attempted.
//
// Entries present on only one side are ignored, so the baseline may cover
// a superset (or, for v1 baselines, a subset) of what the fresh run
// measured.
// numCPU is the fresh host's CPU count (parameterised for tests).
func checkRegression(path string, fresh benchReport, numCPU int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-check: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench-check: parse %s: %w", path, err)
	}
	baseWall := map[string]float64{}
	for _, r := range base.Runs {
		for _, e := range r.Entries {
			baseWall[fmt.Sprintf("g%d/p%d/%s", runGomaxprocs(r, base), r.Parallelism, e.Name)] = e.WallSeconds
		}
	}
	const tolerance = 1.20
	var regressions []string
	compared := 0
	for _, r := range fresh.Runs {
		for _, e := range r.Entries {
			key := fmt.Sprintf("g%d/p%d/%s", runGomaxprocs(r, fresh), r.Parallelism, e.Name)
			b, ok := baseWall[key]
			if !ok || b <= 0 {
				continue
			}
			compared++
			ratio := e.WallSeconds / b
			status := "ok"
			if ratio > tolerance {
				status = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2fs vs baseline %.2fs (%.0f%% slower)", key, e.WallSeconds, b, (ratio-1)*100))
			}
			fmt.Printf("bench-check %-26s %.2fs vs %.2fs  %s\n", key, e.WallSeconds, b, status)
		}
	}

	// Per-kernel gates: ns/op within tolerance, allocs/op never up.
	baseKernels := map[string]kernelEntry{}
	for _, kr := range base.KernelRuns {
		for _, k := range kr.Kernels {
			baseKernels[fmt.Sprintf("g%d/%s", kr.GOMAXPROCS, k.Name)] = k
		}
	}
	for _, kr := range fresh.KernelRuns {
		for _, k := range kr.Kernels {
			key := fmt.Sprintf("g%d/%s", kr.GOMAXPROCS, k.Name)
			b, ok := baseKernels[key]
			if !ok || b.NsPerOp <= 0 {
				continue
			}
			compared++
			ratio := k.NsPerOp / b.NsPerOp
			status := "ok"
			if ratio > tolerance {
				status = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("kernel %s: %.0fns vs baseline %.0fns (%.0f%% slower)", key, k.NsPerOp, b.NsPerOp, (ratio-1)*100))
			}
			if k.AllocsPerOp > b.AllocsPerOp {
				status = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("kernel %s: %d allocs/op vs baseline %d", key, k.AllocsPerOp, b.AllocsPerOp))
			}
			fmt.Printf("bench-check %-26s %.0fns vs %.0fns, %d vs %d allocs/op  %s\n",
				key, k.NsPerOp, b.NsPerOp, k.AllocsPerOp, b.AllocsPerOp, status)
		}
	}

	// Scaling floors: the baseline commits the bar; the fresh host only
	// takes the gate if it can physically scale.
	floors := base.ScalingFloors
	if len(floors) == 0 {
		floors = fresh.ScalingFloors
	}
	if len(floors) > 0 {
		if numCPU < 4 {
			fmt.Printf("bench-check: scaling floors skipped: host has %d CPU(s), floors gate only on hosts with >= 4\n", numCPU)
		} else {
			names := make([]string, 0, len(floors))
			for name := range floors {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				floor := floors[name]
				got, ok := fresh.Speedups[name]
				if !ok {
					continue // experiment not in this run's trajectory
				}
				compared++
				status := "ok"
				if got < floor {
					status = "REGRESSION"
					regressions = append(regressions,
						fmt.Sprintf("scaling %s: speedup %.2fx below floor %.2fx", name, got, floor))
				}
				fmt.Printf("bench-check scaling %-18s %.2fx vs floor %.2fx  %s\n", name, got, floor, status)
			}
		}
	}

	if compared == 0 {
		return fmt.Errorf("bench-check: no comparable entries in %s", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench-check: %d regression(s): %s",
			len(regressions), strings.Join(regressions, "; "))
	}
	fmt.Printf("bench-check: %d entries within bounds of baseline\n", compared)
	return nil
}
