// Command aegis-bench regenerates the paper's tables and figures on the
// simulated SEV platform and prints the rows/series the paper reports.
//
// Usage:
//
//	aegis-bench [-only table1,figure9a,...] [-scale test|eval] [-seed N]
//
// Without -only, every experiment runs in paper order. The eval scale
// matches the values recorded in EXPERIMENTS.md; the test scale is a quick
// smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/repro/aegis/internal/experiment"
	"github.com/repro/aegis/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aegis-bench:", err)
		os.Exit(1)
	}
}

type job struct {
	name string
	run  func(experiment.Scale) (fmt.Stringer, error)
}

// renderable adapts experiment results to fmt.Stringer.
type renderable struct{ s string }

func (r renderable) String() string { return r.s }

func wrap(s string, err error) (fmt.Stringer, error) {
	return renderable{s: s}, err
}

func jobs() []job {
	return []job{
		{"table1", func(sc experiment.Scale) (fmt.Stringer, error) {
			return wrap(experiment.Table1().Render(), nil)
		}},
		{"table2", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Table2(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"table3", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Table3(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure1", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Figure1(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure3", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Figure3(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure8", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Figure8(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure9a", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Figure9a(sc, nil)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure9b", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Figure9b(sc, nil)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure9c", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Figure9c(sc, nil)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure10", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Figure10(sc, nil)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure11", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.Figure11(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"constant", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.ConstantOutputComparison(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"operating", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.FindOperatingPoints(sc, 0.25, nil)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"multitries", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.MultipleTriesAnalysis(sc, nil)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"occupancy", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.CacheOccupancyExtension(sc, 0.125)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-cover", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.AblationSetCover(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-pca", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.AblationPCA(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-confirm", func(sc experiment.Scale) (fmt.Stringer, error) {
			res, err := experiment.AblationConfirmation(sc)
			if err != nil {
				return nil, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-buffer", func(sc experiment.Scale) (fmt.Stringer, error) {
			return wrap(experiment.AblationNoiseBuffer(1<<20).Render(), nil)
		}},
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aegis-bench", flag.ContinueOnError)
	var (
		only  = fs.String("only", "", "comma-separated experiment names (default: all)")
		scale = fs.String("scale", "eval", "scale: test | eval")
		seed  = fs.Uint64("seed", 1, "experiment seed")
		list  = fs.Bool("list", false, "list experiment names and exit")
		telem = fs.Bool("telemetry", true, "print a telemetry summary after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, j := range jobs() {
			fmt.Println(j.name)
		}
		return nil
	}
	var sc experiment.Scale
	switch *scale {
	case "test":
		sc = experiment.TestScale(*seed)
	case "eval":
		sc = experiment.EvalScale(*seed)
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}

	ran := 0
	for _, j := range jobs() {
		if len(selected) > 0 && !selected[j.name] {
			continue
		}
		ran++
		fmt.Printf("=== %s ===\n", j.name)
		start := time.Now()
		out, err := j.run(sc)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		fmt.Println(out.String())
		fmt.Printf("(%s in %s)\n\n", j.name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %q", *only)
	}
	if *telem {
		fmt.Printf("=== telemetry ===\n%s", telemetry.Default().Summary())
	}
	return nil
}
