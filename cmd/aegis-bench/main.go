// Command aegis-bench regenerates the paper's tables and figures on the
// simulated SEV platform and prints the rows/series the paper reports.
//
// Usage:
//
//	aegis-bench [-only table1,figure9a,...] [-scale test|eval] [-seed N]
//	            [-parallelism N[,M,...]] [-bench-json PATH]
//	            [-bench-check BASELINE] [-serial] [-flight PATH]
//	            [-cpuprofile PATH] [-memprofile PATH]
//
// Without -only, every experiment runs in paper order. The eval scale
// matches the values recorded in EXPERIMENTS.md; the test scale is a quick
// smoke run.
//
// -parallelism bounds the worker pools inside the fuzzing and profiling
// pipelines (0 = GOMAXPROCS). A comma-separated list runs the selected
// experiments once per value — a benchmark trajectory — and reports the
// speedup of the last value over the first. Results are byte-identical at
// every value; only wall-clock time changes.
//
// -bench-json writes per-experiment wall-clock (and throughput, where the
// experiment exposes a work-item count) to PATH. -bench-check re-runs the
// same experiments and fails if any is more than 20% slower than the
// entries recorded in BASELINE. Both imply serial job execution so
// timings are not polluted by sibling experiments; otherwise independent
// experiments run concurrently (disable with -serial).
//
// -flight writes the flight recorder's journal to PATH as aegis-flight/v1
// JSONL, one labelled dump per experiment as it completes. It implies
// serial job execution: the recorder is process-global, so concurrent
// experiments would interleave their records.
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (the heap profile is taken after a final GC, so it shows
// retained memory rather than transient garbage). Combine with -serial and
// a single -parallelism value when attributing costs to one pipeline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/repro/aegis/internal/experiment"
	"github.com/repro/aegis/internal/ops"
	"github.com/repro/aegis/internal/parallel"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aegis-bench:", err)
		os.Exit(1)
	}
}

type job struct {
	name string
	// run returns the rendered result and the number of work items the
	// experiment processed (0 when the experiment has no natural unit);
	// items feed the throughput column of -bench-json.
	run func(experiment.Scale) (fmt.Stringer, int, error)
}

// renderable adapts experiment results to fmt.Stringer.
type renderable struct{ s string }

func (r renderable) String() string { return r.s }

func wrap(s string, err error) (fmt.Stringer, int, error) {
	return renderable{s: s}, 0, err
}

func jobs() []job {
	return []job{
		{"table1", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			return wrap(experiment.Table1().Render(), nil)
		}},
		{"table2", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Table2(sc)
			if err != nil {
				return nil, 0, err
			}
			items := 0
			for _, row := range res.Rows {
				items += row.TotalEvents
			}
			return renderable{s: res.Render()}, items, nil
		}},
		{"table3", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Table3(sc)
			if err != nil {
				return nil, 0, err
			}
			items := 0
			for _, row := range res.Rows {
				items += row.GadgetsTried
			}
			return renderable{s: res.Render()}, items, nil
		}},
		{"figure1", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure1(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure3", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure3(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure8", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure8(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure9a", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure9a(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure9b", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure9b(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure9c", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure9c(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure10", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure10(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"figure11", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Figure11(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"constant", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.ConstantOutputComparison(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"operating", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.FindOperatingPoints(sc, 0.25, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"multitries", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.MultipleTriesAnalysis(sc, nil)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"occupancy", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.CacheOccupancyExtension(sc, 0.125)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-cover", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.AblationSetCover(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-pca", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.AblationPCA(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-confirm", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.AblationConfirmation(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
		{"ablation-buffer", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			return wrap(experiment.AblationNoiseBuffer(1<<20).Render(), nil)
		}},
		{"robustness", func(sc experiment.Scale) (fmt.Stringer, int, error) {
			res, err := experiment.Robustness(sc)
			if err != nil {
				return nil, 0, err
			}
			return wrap(res.Render(), nil)
		}},
	}
}

// benchEntry records one experiment's timing within one trajectory run.
type benchEntry struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Items       int     `json:"items,omitempty"`
	// Throughput is items per second, present when Items > 0.
	Throughput float64 `json:"throughput,omitempty"`
}

// benchRun is one pass over the selected experiments at a fixed pipeline
// parallelism.
type benchRun struct {
	Parallelism int          `json:"parallelism"`
	Entries     []benchEntry `json:"entries"`
}

// benchReport is the -bench-json document; bench-check compares a fresh
// report against a committed one.
type benchReport struct {
	Schema     string     `json:"schema"`
	Created    string     `json:"created"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Seed       uint64     `json:"seed"`
	Scale      string     `json:"scale"`
	Runs       []benchRun `json:"runs"`
	// Speedups maps experiment name to wall(first run)/wall(last run) —
	// the trajectory gain from the first parallelism value to the last.
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

func parseParallelismList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -parallelism value %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -parallelism list")
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("aegis-bench", flag.ContinueOnError)
	var (
		only     = fs.String("only", "", "comma-separated experiment names (default: all)")
		scale    = fs.String("scale", "eval", "scale: test | eval")
		seed     = fs.Uint64("seed", 1, "experiment seed")
		list     = fs.Bool("list", false, "list experiment names and exit")
		telem    = fs.Bool("telemetry", true, "print a telemetry summary after the run")
		para     = fs.String("parallelism", "0", "pipeline worker bound; comma-separated list runs a trajectory (0 = GOMAXPROCS)")
		benchOut = fs.String("bench-json", "", "write wall-clock/throughput JSON to this path (implies serial jobs)")
		baseline = fs.String("bench-check", "", "compare a fresh run against this baseline JSON; fail on >20% regression")
		serial   = fs.Bool("serial", false, "run experiments one at a time even when not benchmarking")
		flightTo = fs.String("flight", "", "write per-experiment aegis-flight/v1 JSONL dumps to this path (implies serial jobs)")
		faults   = fs.String("faults", "", "fault preset for the robustness experiment: off | light | heavy (empty = sweep all)")
		cpuprof  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memprof  = fs.String("memprofile", "", "write a pprof heap profile (post-GC) to this path at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, j := range jobs() {
			fmt.Println(j.name)
		}
		return nil
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aegis-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "aegis-bench: memprofile:", err)
			}
		}()
	}
	var sc experiment.Scale
	switch *scale {
	case "test":
		sc = experiment.TestScale(*seed)
	case "eval":
		sc = experiment.EvalScale(*seed)
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	sc.FaultPreset = *faults
	parallelisms, err := parseParallelismList(*para)
	if err != nil {
		return err
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	var picked []job
	for _, j := range jobs() {
		if len(selected) == 0 || selected[j.name] {
			picked = append(picked, j)
		}
	}
	if len(picked) == 0 {
		return fmt.Errorf("no experiments matched %q", *only)
	}

	// Timing runs must not share the machine with sibling experiments,
	// and flight dumps need experiments serialised so each dump window
	// holds exactly one experiment's records.
	timing := *benchOut != "" || *baseline != ""
	concurrent := !timing && !*serial && *flightTo == "" && len(picked) > 1

	var flightFile *os.File
	if *flightTo != "" {
		f, err := os.Create(*flightTo)
		if err != nil {
			return fmt.Errorf("flight: %w", err)
		}
		flightFile = f
		defer flightFile.Close()
	}

	report := benchReport{
		Schema:     "aegis-bench/v1",
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Scale:      *scale,
	}
	for _, p := range parallelisms {
		scp := sc
		scp.Parallelism = p
		if len(parallelisms) > 1 {
			fmt.Printf("=== parallelism %d ===\n\n", p)
		}
		run := benchRun{Parallelism: p}
		type jobOut struct {
			text  string
			entry benchEntry
		}
		outs := make([]jobOut, len(picked))
		exec := func(_ context.Context, i int) (struct{}, error) {
			j := picked[i]
			start := time.Now()
			out, items, err := j.run(scp)
			if err != nil {
				return struct{}{}, fmt.Errorf("%s: %w", j.name, err)
			}
			wall := time.Since(start)
			e := benchEntry{Name: j.name, WallSeconds: wall.Seconds(), Items: items}
			if items > 0 && wall > 0 {
				e.Throughput = float64(items) / wall.Seconds()
			}
			outs[i] = jobOut{
				text:  fmt.Sprintf("=== %s ===\n%s\n(%s in %s)\n\n", j.name, out.String(), j.name, wall.Round(time.Millisecond)),
				entry: e,
			}
			return struct{}{}, nil
		}
		if concurrent {
			pool := parallel.NewPool("bench.jobs", 0)
			if _, err := parallel.Map(context.Background(), pool, len(picked), exec); err != nil {
				return err
			}
		} else {
			for i := range picked {
				before := flight.Default().Total()
				if _, err := exec(context.Background(), i); err != nil {
					return err
				}
				fmt.Print(outs[i].text)
				outs[i].text = ""
				if flightFile != nil {
					err := flight.Default().WriteJSONL(flightFile, flight.DumpOptions{
						Since: before, Label: picked[i].name,
					})
					if err != nil {
						return fmt.Errorf("flight: %w", err)
					}
				}
			}
		}
		for _, o := range outs {
			if o.text != "" {
				fmt.Print(o.text)
			}
			run.Entries = append(run.Entries, o.entry)
		}
		report.Runs = append(report.Runs, run)
	}

	if len(report.Runs) > 1 {
		report.Speedups = map[string]float64{}
		first, last := report.Runs[0], report.Runs[len(report.Runs)-1]
		for i, e := range first.Entries {
			if e.WallSeconds > 0 && last.Entries[i].WallSeconds > 0 {
				report.Speedups[e.Name] = e.WallSeconds / last.Entries[i].WallSeconds
			}
		}
		fmt.Printf("=== speedup (parallelism %d -> %d) ===\n", first.Parallelism, last.Parallelism)
		for _, e := range first.Entries {
			if s, ok := report.Speedups[e.Name]; ok {
				fmt.Printf("%-18s %.2fx\n", e.Name, s)
			}
		}
		fmt.Println()
	}

	if *benchOut != "" {
		if err := writeReport(*benchOut, report); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *benchOut)
	}
	if *baseline != "" {
		if err := checkRegression(*baseline, report); err != nil {
			return err
		}
	}
	if *flightTo != "" {
		fmt.Printf("wrote flight journal to %s\n", *flightTo)
	}
	if *telem {
		fmt.Printf("=== telemetry ===\n%s", telemetry.Default().Summary())
		budget := ops.NewOverheadBudget(0)
		budget.SetSource(ops.TelemetrySource(telemetry.Default()))
		fmt.Println(budget.Status().Verdict())
	}
	return nil
}

func writeReport(path string, r benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkRegression compares a fresh report against a committed baseline:
// any experiment more than 20% slower than the baseline entry with the
// same (parallelism, name) fails the check. Entries present on only one
// side are ignored, so the baseline may cover a superset of experiments.
func checkRegression(path string, fresh benchReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-check: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench-check: parse %s: %w", path, err)
	}
	baseWall := map[string]float64{}
	for _, r := range base.Runs {
		for _, e := range r.Entries {
			baseWall[fmt.Sprintf("%d/%s", r.Parallelism, e.Name)] = e.WallSeconds
		}
	}
	const tolerance = 1.20
	var regressions []string
	compared := 0
	for _, r := range fresh.Runs {
		for _, e := range r.Entries {
			key := fmt.Sprintf("%d/%s", r.Parallelism, e.Name)
			b, ok := baseWall[key]
			if !ok || b <= 0 {
				continue
			}
			compared++
			ratio := e.WallSeconds / b
			status := "ok"
			if ratio > tolerance {
				status = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2fs vs baseline %.2fs (%.0f%% slower)", key, e.WallSeconds, b, (ratio-1)*100))
			}
			fmt.Printf("bench-check %-22s %.2fs vs %.2fs  %s\n", key, e.WallSeconds, b, status)
		}
	}
	if compared == 0 {
		return fmt.Errorf("bench-check: no comparable entries in %s", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench-check: %d regression(s) over %d%%: %s",
			len(regressions), int((tolerance-1)*100), strings.Join(regressions, "; "))
	}
	fmt.Printf("bench-check: %d entries within %d%% of baseline\n", compared, int((tolerance-1)*100))
	return nil
}
