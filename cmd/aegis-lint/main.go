// Command aegis-lint runs the project's static-analysis suite: the
// intra-procedural determinism, hot-path, telemetry-naming, and
// error-wrapping rules plus the interprocedural call-graph rules
// (hotpathdeep, detranddeep, lockjournal) defined in internal/analysis
// (see DESIGN.md "Mechanically enforced invariants").
//
// Usage:
//
//	aegis-lint [-json|-sarif] [-cache [-store dir]] [-C dir] [./...]   lint the module
//	aegis-lint -audit [./...]   inventory every //aegis:allow as JSON
//	aegis-lint -rules           list the registered rules
//	aegis-lint -gofmt           gofmt gate on the same file walk
//
// -sarif emits SARIF 2.1.0 for GitHub code-scanning upload. -cache reuses
// per-package results stored as lint-result artifacts (default store
// <module root>/lint.aegis-artifact), re-analyzing only packages whose
// import-closure file contents changed; the hit/miss funnel is printed to
// stderr. -audit reports each suppression's rule, position, reason, and
// whether it still suppresses or prunes anything.
//
// Exit codes: 0 clean, 1 findings, 2 load error.
package main

import (
	"os"

	"github.com/repro/aegis/internal/analysis"
)

func main() {
	os.Exit(analysis.CLI(os.Args[1:], os.Stdout, os.Stderr))
}
