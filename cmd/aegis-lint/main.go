// Command aegis-lint runs the project's static-analysis suite: the
// determinism, hot-path, telemetry-naming, and error-wrapping rules
// defined in internal/analysis (see DESIGN.md "Mechanically enforced
// invariants").
//
// Usage:
//
//	aegis-lint [-json] [-rules] [-C dir] [./...]   lint the module
//	aegis-lint -gofmt                              gofmt gate on the same file walk
//
// Exit codes: 0 clean, 1 findings, 2 load error.
package main

import (
	"os"

	"github.com/repro/aegis/internal/analysis"
)

func main() {
	os.Exit(analysis.CLI(os.Args[1:], os.Stdout, os.Stderr))
}
