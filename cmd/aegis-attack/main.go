// Command aegis-attack runs the paper's three HPC side-channel attacks
// (§III) against the simulated SEV guest, with or without the Aegis
// defense, and reports training curves and attack accuracy.
//
// Usage:
//
//	aegis-attack -attack wfa|ksa|mea [-defend] [-mechanism laplace|dstar] [-epsilon 1]
package main

import (
	"flag"
	"fmt"
	"os"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/trace"
	"github.com/repro/aegis/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aegis-attack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aegis-attack", flag.ContinueOnError)
	var (
		attackName = fs.String("attack", "wfa", "attack: wfa | ksa | mea")
		defend     = fs.Bool("defend", false, "deploy the Aegis defense in the victim VM")
		mechanism  = fs.String("mechanism", aegis.MechanismLaplace, "defense mechanism")
		epsilon    = fs.Float64("epsilon", 1.0, "privacy budget")
		seed       = fs.Uint64("seed", 1, "experiment seed")
		secrets    = fs.Int("secrets", 5, "number of secrets")
		traces     = fs.Int("traces", 10, "traces per secret")
		ticks      = fs.Int("ticks", 100, "trace length in ticks")
		epochs     = fs.Int("epochs", 20, "training epochs")
		saveTraces = fs.String("save", "", "save the collected dataset to this JSONL file")
		loadTraces = fs.String("load", "", "load the dataset from this JSONL file instead of collecting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	catalog := hpc.NewAMDEpyc7252Catalog(1)
	var app workload.App
	switch *attackName {
	case "wfa":
		sites := workload.Websites()
		if *secrets < len(sites) {
			sites = sites[:*secrets]
		}
		app = &workload.WebsiteApp{Sites: sites}
	case "ksa":
		app = &workload.KeystrokeApp{WindowTicks: *ticks, MaxKeys: *secrets}
	case "mea":
		zoo := workload.ModelZoo()
		if *secrets < len(zoo) {
			zoo = zoo[:*secrets]
		}
		app = &workload.DNNApp{Models: zoo}
	default:
		return fmt.Errorf("unknown attack %q", *attackName)
	}

	sc := &attack.Scenario{
		App:             app,
		Catalog:         catalog,
		TracesPerSecret: *traces,
		TraceTicks:      *ticks,
		Seed:            *seed,
	}

	var defense attack.DefenseFactory
	if *defend {
		fw, err := aegis.New(aegis.Config{Seed: *seed, FuzzCandidates: 300})
		if err != nil {
			return err
		}
		gadgets, err := fw.Fuzz(attack.DefaultEventNames())
		if err != nil {
			return err
		}
		factory, err := fw.NewDefense(gadgets, *mechanism, *epsilon)
		if err != nil {
			return err
		}
		defense = attack.DefenseFactory(factory)
		fmt.Printf("defense: %s eps=%g, %d-gadget cover\n", *mechanism, *epsilon, gadgets.CoverSize)
	}

	var ds *trace.Dataset
	if *loadTraces != "" {
		fmt.Printf("loading dataset from %s...\n", *loadTraces)
		var err error
		ds, err = trace.LoadFile(*loadTraces)
		if err != nil {
			return err
		}
	} else {
		fmt.Printf("collecting %d traces x %d secrets x %d ticks (%s)...\n",
			*traces, len(app.Secrets()), *ticks, map[bool]string{true: "defended", false: "clean"}[*defend])
		var err error
		ds, err = sc.Collect(defense)
		if err != nil {
			return err
		}
	}
	if *saveTraces != "" {
		if err := ds.SaveFile(*saveTraces); err != nil {
			return err
		}
		fmt.Printf("saved %d traces to %s\n", ds.Len(), *saveTraces)
	}

	if *attackName == "mea" {
		dnn, ok := app.(*workload.DNNApp)
		if !ok {
			return fmt.Errorf("internal: mea app type")
		}
		cfg := attack.DefaultSequenceTrainConfig(*seed)
		cfg.Epochs = *epochs
		atk, stats, err := attack.TrainSequenceAttack(ds, dnn, cfg)
		if err != nil {
			return err
		}
		for _, st := range stats {
			fmt.Printf("epoch %2d  ctc-loss %8.3f  val layer-acc %5.1f%%\n",
				st.Epoch, st.TrainLoss, st.ValAcc*100)
		}
		acc, err := atk.Evaluate(ds)
		if err != nil {
			return err
		}
		fmt.Printf("\nfinal layer-sequence accuracy: %.1f%%\n", acc*100)
		return nil
	}

	cfg := attack.DefaultTrainConfig(*seed)
	cfg.Epochs = *epochs
	clf, stats, err := attack.TrainClassifier(ds, cfg)
	if err != nil {
		return err
	}
	for _, st := range stats {
		fmt.Printf("epoch %2d  loss %7.4f  train %5.1f%%  val %5.1f%%\n",
			st.Epoch, st.TrainLoss, st.TrainAcc*100, st.ValAcc*100)
	}
	acc, err := clf.Evaluate(ds)
	if err != nil {
		return err
	}
	fmt.Printf("\nfinal accuracy: %.1f%% (random guess %.1f%%)\n",
		acc*100, 100/float64(clf.Classes()))
	return nil
}
