package main

import (
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// faultMetricLine matches the prometheus exposition lines of the fault
// injection and degradation funnel metrics — the names and label sets that
// operators alert on, which must stay stable across releases.
var faultMetricLine = regexp.MustCompile(`^(fault_injected_total|fuzzer_candidates_dropped_total|` +
	`obfuscator_(retries_total|degraded_ticks_total|zero_draw_ticks_total|no_injection_ticks_total|` +
	`injected_ticks_total|mechanism_fallbacks_total|counter_rearms_total|` +
	`multi_degraded_plan_ticks_total|multi_retries_total|multi_counter_rearms_total))([{ ])`)

// filterFaultMetrics extracts the fault/degradation metric lines from a
// prometheus dump and normalises the sample values to "N" so the golden
// file pins names and labels, not counts.
func filterFaultMetrics(out string) string {
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if !faultMetricLine.MatchString(line) {
			continue
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			continue
		}
		lines = append(lines, line[:idx]+" N")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestFaultsPromGolden runs the full pipeline under the light fault preset
// and checks the exposed fault metric names against the golden file.
// Regenerate with AEGIS_UPDATE_GOLDEN=1 go test ./cmd/aegisctl/.
func TestFaultsPromGolden(t *testing.T) {
	oldStdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- string(b)
	}()
	runErr := run([]string{
		"-faults", "light", "-candidates", "1500", "-top", "2",
		"-secrets", "2", "-ticks", "60", "-telemetry", "prom",
	})
	w.Close()
	os.Stdout = oldStdout
	out := <-outCh
	if runErr != nil {
		t.Fatalf("aegisctl run: %v", runErr)
	}

	got := filterFaultMetrics(out)
	golden := filepath.Join("testdata", "faults_prom.golden")
	if os.Getenv("AEGIS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with AEGIS_UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("fault metric exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The run itself must have exercised the fault layer: at least one
	// fault kind fired and the CLI surfaced the fault total.
	if !strings.Contains(out, "fault injection: light preset") {
		t.Error("fault preset banner missing from output")
	}
	if !strings.Contains(out, "faults injected across the stack:") {
		t.Error("fault total missing from output")
	}
}

func TestFaultsFlagValidation(t *testing.T) {
	if err := run([]string{"-faults", "catastrophic"}); err == nil {
		t.Fatal("unknown -faults preset accepted")
	}
	if err := run([]string{"-telemetry", "xml"}); err == nil {
		t.Fatal("unknown -telemetry format accepted")
	}
}
