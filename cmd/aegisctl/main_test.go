package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"
)

// faultMetricLine matches the prometheus exposition lines of the fault
// injection and degradation funnel metrics — the names and label sets that
// operators alert on, which must stay stable across releases.
var faultMetricLine = regexp.MustCompile(`^(fault_injected_total|fuzzer_candidates_dropped_total|` +
	`obfuscator_(retries_total|degraded_ticks_total|zero_draw_ticks_total|no_injection_ticks_total|` +
	`injected_ticks_total|mechanism_fallbacks_total|counter_rearms_total|` +
	`multi_degraded_plan_ticks_total|multi_retries_total|multi_counter_rearms_total))([{ ])`)

// filterFaultMetrics extracts the fault/degradation metric lines from a
// prometheus dump and normalises the sample values to "N" so the golden
// file pins names and labels, not counts.
func filterFaultMetrics(out string) string {
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if !faultMetricLine.MatchString(line) {
			continue
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			continue
		}
		lines = append(lines, line[:idx]+" N")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestFaultsPromGolden runs the full pipeline under the light fault preset
// and checks the exposed fault metric names against the golden file.
// Regenerate with AEGIS_UPDATE_GOLDEN=1 go test ./cmd/aegisctl/.
func TestFaultsPromGolden(t *testing.T) {
	oldStdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- string(b)
	}()
	runErr := run([]string{
		"-faults", "light", "-candidates", "1500", "-top", "2",
		"-secrets", "2", "-ticks", "60", "-telemetry", "prom",
	})
	w.Close()
	os.Stdout = oldStdout
	out := <-outCh
	if runErr != nil {
		t.Fatalf("aegisctl run: %v", runErr)
	}

	got := filterFaultMetrics(out)
	golden := filepath.Join("testdata", "faults_prom.golden")
	if os.Getenv("AEGIS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with AEGIS_UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("fault metric exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The run itself must have exercised the fault layer: at least one
	// fault kind fired and the CLI surfaced the fault total.
	if !strings.Contains(out, "fault injection: light preset") {
		t.Error("fault preset banner missing from output")
	}
	if !strings.Contains(out, "faults injected across the stack:") {
		t.Error("fault total missing from output")
	}
}

func TestFaultsFlagValidation(t *testing.T) {
	if err := run([]string{"-faults", "catastrophic"}); err == nil {
		t.Fatal("unknown -faults preset accepted")
	}
	if err := run([]string{"-telemetry", "xml"}); err == nil {
		t.Fatal("unknown -telemetry format accepted")
	}
}

// TestOpsSurfaceSmoke is the acceptance test for the unified ops surface:
// a full pipeline run with -ops serves /healthz, /readyz, /metrics,
// /flight and /snapshot over real HTTP, and fault injection leaves a
// degraded obfuscator tick visibly captured in the dumped JSONL. It
// also exercises the -tail client against the live server. The light
// fault preset is used because heavy starves the fuzzer of gadgets at
// this candidate budget; light still degrades ticks (see the prom
// golden), which is what the flight recorder must capture.
func TestOpsSurfaceSmoke(t *testing.T) {
	addrCh := make(chan string, 1)
	opsAddrNotify = func(addr string) { addrCh <- addr }
	holdStop = make(chan struct{})
	defer func() { opsAddrNotify = nil; holdStop = nil }()

	oldStdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- string(b)
	}()
	runErrCh := make(chan error, 1)
	go func() {
		runErrCh <- run([]string{
			"-ops", "127.0.0.1:0", "-hold", "60s",
			"-faults", "light", "-candidates", "1500", "-top", "2",
			"-secrets", "2", "-ticks", "120", "-telemetry", "none",
		})
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runErrCh:
		w.Close()
		os.Stdout = oldStdout
		t.Fatalf("run exited before serving ops: %v\n%s", err, <-outCh)
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting for the ops address")
	}

	httpGet := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			select {
			case runErr := <-runErrCh:
				w.Close()
				os.Stdout = oldStdout
				t.Fatalf("run exited mid-probe (err=%v):\n%s", runErr, <-outCh)
			default:
			}
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(b)
	}

	// Wait for the pipeline to deploy (the warm-up gate opens /readyz)
	// and finish the world run, at which point -hold keeps serving.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if code, _ := httpGet("/readyz"); code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never turned ready")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if code, body := httpGet("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d\n%s", code, body)
	} else if !strings.Contains(body, `"overhead-budget"`) {
		t.Fatalf("/healthz missing overhead-budget probe:\n%s", body)
	}
	if code, body := httpGet("/metrics"); code != 200 ||
		!strings.Contains(body, "obfuscator_ticks_total") {
		t.Fatalf("/metrics = %d or missing obfuscator_ticks_total", code)
	}
	if code, body := httpGet("/snapshot"); code != 200 ||
		!strings.Contains(body, `"schema": "aegis-snapshot/v1"`) {
		t.Fatalf("/snapshot = %d\n%s", code, body)
	}

	// The acceptance criterion: a degraded tick captured in the JSONL.
	// Light faults degrade ticks; poll /flight until the incident shows.
	var flightBody string
	for {
		code, body := httpGet("/flight?kind=obfuscator-tick")
		if code != 200 {
			t.Fatalf("/flight = %d\n%s", code, body)
		}
		flightBody = body
		if strings.Contains(body, `"incident":true`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no degraded tick captured in /flight JSONL:\n%s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(flightBody, `"schema":"aegis-flight/v1"`) {
		t.Fatalf("/flight missing schema header:\n%s", flightBody)
	}
	if !strings.Contains(flightBody, `"code":"degraded:`) {
		t.Fatalf("degraded tick lacks a degradation reason code:\n%s", flightBody)
	}

	// The -tail client mode streams the same JSONL from the live server.
	var tail strings.Builder
	if err := runTail(addr, false, 16, &tail); err != nil {
		t.Fatalf("runTail: %v", err)
	}
	if !strings.Contains(tail.String(), `"schema":"aegis-flight/v1"`) {
		t.Fatalf("-tail output missing schema header:\n%s", tail.String())
	}

	close(holdStop)
	if err := <-runErrCh; err != nil {
		t.Fatalf("aegisctl run: %v", err)
	}
	w.Close()
	os.Stdout = oldStdout
	out := <-outCh
	if !strings.Contains(out, "ops surface: http://") {
		t.Errorf("ops banner missing from output:\n%s", out)
	}
}
