package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/repro/aegis/internal/daemon"
	"github.com/repro/aegis/internal/daemon/daemontest"
	"github.com/repro/aegis/internal/ops"
)

// startCtlServer boots a real daemon with its control API on a loopback
// ops server, returning the bound address.
func startCtlServer(t *testing.T) (string, *daemon.Daemon) {
	t.Helper()
	cfg := daemontest.BaseConfig(21)
	cfg.QueueCapacity = 4
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := ops.NewServer(ops.Config{Addr: "127.0.0.1:0", Recorder: d.Journal()})
	srv.RegisterReadiness(d.ReadyProbe())
	srv.Mount(daemon.CtlPrefix, "ctl", d.CtlHandler())
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, d
}

// TestCtlClientSmoke drives every -ctl subcommand against a live daemon
// over real HTTP and checks the envelopes that come back.
func TestCtlClientSmoke(t *testing.T) {
	addr, d := startCtlServer(t)

	ctl := func(args ...string) (string, error) {
		var sb strings.Builder
		err := runCtl(addr, args, &sb)
		return sb.String(), err
	}
	decode := func(t *testing.T, raw string) map[string]any {
		t.Helper()
		var body map[string]any
		if err := json.Unmarshal([]byte(raw), &body); err != nil {
			t.Fatalf("ctl output not JSON: %v\n%s", err, raw)
		}
		if body["schema"] != daemon.CtlSchema {
			t.Fatalf("ctl schema = %v", body["schema"])
		}
		return body
	}

	out, err := ctl("status")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, out)

	if out, err = ctl("attach", "cli-a", "website", "2"); err != nil {
		t.Fatal(err)
	}
	if body := decode(t, out); body["tenant"].(map[string]any)["state"] != "attaching" {
		t.Fatalf("attach envelope: %s", out)
	}
	if _, err = ctl("attach", "cli-a"); err == nil {
		t.Fatal("duplicate attach did not error")
	} else if !strings.Contains(err.Error(), "409") {
		t.Fatalf("duplicate attach error lacks status: %v", err)
	}

	d.Run(2)
	if out, err = ctl("tenant", "cli-a"); err != nil {
		t.Fatal(err)
	}
	if body := decode(t, out); body["tenant"].(map[string]any)["state"] != "protecting" {
		t.Fatalf("tenant envelope after ticks: %s", out)
	}
	if _, err = ctl("tenant", "ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("missing tenant: %v", err)
	}

	if out, err = ctl("submit", "cli-a", "3"); err != nil {
		t.Fatal(err)
	}
	if body := decode(t, out); body["accepted"].(float64) != 3 {
		t.Fatalf("submit envelope: %s", out)
	}

	if out, err = ctl("reload", `{"epsilon": 2.5}`); err != nil {
		t.Fatal(err)
	}
	if body := decode(t, out); body["daemon"].(map[string]any)["pending_reload"] != true {
		t.Fatalf("reload envelope: %s", out)
	}
	if _, err = ctl("reload", `{"epsilon": -1}`); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("invalid reload: %v", err)
	}

	// @file reload form.
	deltaPath := filepath.Join(t.TempDir(), "delta.json")
	if err := os.WriteFile(deltaPath, []byte(`{"mechanism":"dstar"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err = ctl("reload", "@"+deltaPath); err != nil {
		t.Fatalf("@file reload: %v", err)
	}

	if out, err = ctl("list"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"cli-a"`) {
		t.Fatalf("list envelope: %s", out)
	}

	if out, err = ctl("kill", "cli-a"); err != nil {
		t.Fatal(err)
	}
	if body := decode(t, out); body["daemon"].(map[string]any)["tenants"].(float64) != 0 {
		t.Fatalf("kill envelope: %s", out)
	}

	if _, err = ctl("bogus"); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if _, err = ctl("submit", "cli-a", "not-a-number"); err == nil {
		t.Fatal("bad job count accepted")
	}
}
