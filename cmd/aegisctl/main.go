// Command aegisctl drives the Aegis pipeline end to end on the simulated
// SEV platform: profile an application, fuzz gadgets for its most
// vulnerable HPC events, and deploy the obfuscator into a victim VM.
//
// Usage:
//
//	aegisctl [flags]
//
// Flags select the application, the DP mechanism and ε, and the offline
// analysis budgets. The tool prints the profiler ranking, the gadget
// cover, and the injection telemetry of a protected run.
//
// Besides the pipeline, aegisctl has client and inspection modes: -tail
// streams a running ops server's flight journal, -ctl drives a running
// aegisd's control API, and -artifacts DIR lists a campaign artifact
// store's entries — kind, fingerprint, schema version, size — marking
// each current or stale against the configuration the other flags
// describe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/artifact"
	"github.com/repro/aegis/internal/experiment"
	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/ops"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/workload"
)

// opsAddrNotify, when set (by tests), receives the bound ops address as
// soon as the server is up.
var opsAddrNotify func(addr string)

// tailPollInterval paces -tail -follow polling.
var tailPollInterval = 500 * time.Millisecond

// holdStop, when non-nil (tests), interrupts -hold early on close.
var holdStop chan struct{}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aegisctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aegisctl", flag.ContinueOnError)
	var (
		appName    = fs.String("app", "website", "application to protect: website | keystroke | dnn")
		mechanism  = fs.String("mechanism", aegis.MechanismLaplace, "noise mechanism: laplace | dstar | random | constant")
		epsilon    = fs.Float64("epsilon", 1.0, "privacy budget (or bound/peak for baselines)")
		seed       = fs.Uint64("seed", 1, "experiment seed")
		topEvents  = fs.Int("top", 4, "number of vulnerable events to protect")
		secrets    = fs.Int("secrets", 6, "number of application secrets to profile")
		candidates = fs.Int("candidates", 400, "fuzzing candidates per event")
		ticks      = fs.Int("ticks", 200, "protected run length in ticks")
		advise     = fs.Bool("advise", false, "auto-select epsilon: largest budget pushing a website-fingerprinting attacker to <= -target accuracy")
		target     = fs.Float64("target", 0.25, "target attack accuracy for -advise")
		faultsFlag = fs.String("faults", faultinject.PresetOff, "substrate fault preset: off | light | heavy (deterministic, seed-derived)")
		telemFmt   = fs.String("telemetry", "summary", "telemetry dump after the run: summary | json | prom | none")
		verbose    = fs.Bool("v", false, "stream structured telemetry events to stderr")
		opsAddr    = fs.String("ops", "", "serve the ops surface (/healthz /readyz /metrics /debug/pprof /flight /snapshot) on this address, e.g. :9144")
		hold       = fs.Duration("hold", 0, "with -ops: keep serving for this long after the run completes")
		tailFrom   = fs.String("tail", "", "client mode: stream /flight JSONL from a running ops server (URL or host:port) and exit; ignores pipeline flags")
		follow     = fs.Bool("follow", false, "with -tail: poll for new records instead of exiting after one dump")
		tailWindow = fs.Int("window", 0, "with -tail: only the newest N records")
		ctlFrom    = fs.String("ctl", "", "client mode: drive a running aegisd's control API (URL or host:port); the command follows the flags: status | list | tenant <name> | attach <name> [app [secrets]] | detach <name> | kill <name> | submit <name> <jobs> | reload <json|@file>")
		storeDir   = fs.String("store", "", "artifact store directory backing the offline pipelines (campaign resume; a warm run is byte-identical, only faster)")
		artifacts  = fs.String("artifacts", "", "inspect mode: list an artifact store's entries (kind, fingerprint, schema, size) and their staleness vs the current flags, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tailFrom != "" {
		return runTail(*tailFrom, *follow, *tailWindow, os.Stdout)
	}
	if *ctlFrom != "" {
		return runCtl(*ctlFrom, fs.Args(), os.Stdout)
	}
	if *artifacts != "" {
		return runArtifacts(*artifacts, *appName, *secrets, *seed, *candidates, *faultsFlag, os.Stdout)
	}
	switch *telemFmt {
	case "summary", "json", "prom", "none":
	default:
		return fmt.Errorf("unknown -telemetry format %q (want summary, json, prom or none)", *telemFmt)
	}
	if *verbose {
		telemetry.Log().SetSink(telemetry.NewWriterSink(os.Stderr))
	}

	app, err := pickApp(*appName, *secrets)
	if err != nil {
		return err
	}
	faults, err := faultinject.Preset(*faultsFlag, *seed)
	if err != nil {
		return err
	}

	fw, err := aegis.New(aegis.Config{
		Seed:              *seed,
		FuzzCandidates:    *candidates,
		ProfileTraceTicks: 80,
		ProfileRepeats:    4,
		ArtifactDir:       *storeDir,
		Faults:            faults,
		Ops:               ops.Config{Addr: *opsAddr},
	})
	if err != nil {
		return err
	}
	defer fw.Close()
	if srv := fw.OpsServer(); srv != nil {
		fmt.Printf("ops surface: http://%s (healthz readyz metrics pprof flight snapshot)\n", srv.Addr())
		if opsAddrNotify != nil {
			opsAddrNotify(srv.Addr())
		}
	}
	if faults.Enabled() {
		fmt.Printf("fault injection: %s preset (seed-derived schedules)\n", *faultsFlag)
	}
	fmt.Printf("platform: %s (%d legal instruction variants)\n",
		fw.Catalog().Processor, fw.LegalInstructions())

	fmt.Printf("\n[1/3] profiling %q over %d secrets...\n", app.Name(), len(app.Secrets()))
	profile, err := fw.Profile(app)
	if err != nil {
		return err
	}
	fmt.Printf("warm-up: %d/%d events respond to the application\n",
		profile.WarmupRemaining, profile.TotalEvents)
	fmt.Println("most vulnerable events (mutual information, bits):")
	for i, re := range profile.Ranked {
		if i >= *topEvents {
			break
		}
		fmt.Printf("  %2d. %-40s %.3f\n", i+1, re.Event.Name, re.MI)
	}

	fmt.Printf("\n[2/3] fuzzing gadgets for the top %d events...\n", *topEvents)
	gadgets, err := fw.Fuzz(profile.Top(*topEvents))
	if err != nil {
		return err
	}
	fmt.Printf("tried %d candidates; minimal cover: %d gadgets (%d instructions stacked)\n",
		gadgets.GadgetsTried, gadgets.CoverSize, gadgets.SegmentLen)

	chosenEps := *epsilon
	if *advise {
		fmt.Printf("\n[advise] sweeping epsilon for target attack accuracy <= %.0f%%...\n", *target*100)
		sc := experiment.TestScale(*seed)
		points, err := experiment.FindOperatingPoints(sc, *target, nil)
		if err != nil {
			return err
		}
		fmt.Print(points.Render())
		kind := experiment.MechanismKind(*mechanism)
		if p, ok := points.Point(kind); ok && p.Met {
			chosenEps = p.Epsilon
			fmt.Printf("using epsilon %g for %s\n", chosenEps, *mechanism)
		} else {
			fmt.Printf("no swept epsilon met the target for %s; keeping %g\n", *mechanism, chosenEps)
		}
	}

	fmt.Printf("\n[3/3] deploying %s obfuscator (param %g) into a SEV guest...\n",
		*mechanism, chosenEps)
	world := sev.NewWorld(sev.DefaultConfig(*seed))
	world.SetFaults(fw.FaultInjector())
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		return err
	}
	att := vm.Attest()
	fmt.Printf("attestation: %s / %s (measurement %x)\n",
		att.Processor, att.SEVVersion, att.Measurement)

	lib := workload.DefaultLibrary(1)
	stream := rng.New(*seed).Split("aegisctl")
	runner := workload.NewRunner(app.Name(), lib, stream.Split("runner"))
	for i, secret := range app.Secrets() {
		job, err := app.Job(secret, stream.SplitN("job", i))
		if err != nil {
			return err
		}
		runner.Enqueue(job)
	}
	if err := vm.AddProcess(0, runner); err != nil {
		return err
	}
	obf, err := fw.Protect(vm, 0, gadgets, *mechanism, chosenEps)
	if err != nil {
		return err
	}
	if srv := fw.OpsServer(); srv != nil {
		// Component probes: sev world liveness, obfuscator fidelity, and
		// hpc substrate (degraded when its fault counters move). Probes
		// run on HTTP handler goroutines while the world steps
		// single-threaded, so they read only atomic telemetry counters —
		// never live simulation objects like World or Obfuscator.
		reg := telemetry.Default()
		srv.RegisterHealth(ops.Probe{Name: "sev", Check: func() ops.ProbeResult {
			return ops.OK(fmt.Sprintf("tick %.0f", reg.Counter(telemetry.MetricSevWorldTicksTotal).Value()))
		}})
		srv.RegisterHealth(ops.Probe{Name: "obfuscator", Check: func() ops.ProbeResult {
			total := reg.Counter(telemetry.MetricObfuscatorTicksTotal).Value()
			var degraded float64
			for _, r := range obfuscator.DegradeReasons {
				degraded += reg.Counter(telemetry.MetricObfuscatorDegradedTicksTotal,
					telemetry.L("reason", string(r))).Value()
			}
			if degraded == 0 {
				return ops.OK(fmt.Sprintf("%.0f ticks, full fidelity", total))
			}
			return ops.Degraded(fmt.Sprintf("%.0f/%.0f ticks degraded", degraded, total))
		}})
		srv.RegisterHealth(ops.Probe{Name: "hpc", Check: func() ops.ProbeResult {
			hpcFaults := reg.Counter(telemetry.MetricFaultInjectedTotal,
				telemetry.L("kind", faultinject.KindPMURead.String())).Value() +
				reg.Counter(telemetry.MetricFaultInjectedTotal,
					telemetry.L("kind", faultinject.KindCounterSaturation.String())).Value()
			if hpcFaults == 0 {
				return ops.OK("counters clean")
			}
			return ops.Degraded(fmt.Sprintf("%.0f PMU read/saturation faults", hpcFaults))
		}})
	}
	world.Run(*ticks)

	usage, err := vm.CPUUsage(0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nprotected run: %d ticks, vCPU usage %.1f%%\n", *ticks, usage*100)
	fmt.Printf("injected %d gadget-segment executions (%.0f reference-event counts, saturation %.1f%%)\n",
		obf.InjectedReps(), obf.InjectedCounts(), obf.SaturationRate()*100)
	fmt.Printf("completed %d/%d application jobs\n",
		len(runner.Timings()), len(app.Secrets()))

	report := obf.Report()
	if report.Full() {
		fmt.Println("protection: full (no degraded ticks, no substrate faults)")
	} else {
		fmt.Printf("protection: DEGRADED — %d/%d ticks degraded, %d retries, %d counter re-arms, %d mechanism fallbacks, %d faults seen\n",
			report.DegradedTicks, report.Ticks, report.Retries,
			report.CounterRearms, report.MechanismFallbacks, report.FaultsSeen)
		for _, reason := range obfuscator.DegradeReasons {
			if n := report.DegradedByReason[reason]; n > 0 {
				fmt.Printf("  degraded[%s] = %d\n", reason, n)
			}
		}
	}
	if in := fw.FaultInjector(); in != nil {
		fmt.Printf("faults injected across the stack: %d\n", in.Total())
	}

	switch *telemFmt {
	case "summary":
		fmt.Printf("\n--- telemetry ---\n%s", telemetry.Default().Summary())
	case "json":
		fmt.Println("\n--- telemetry (json) ---")
		if err := telemetry.Default().WriteJSON(os.Stdout); err != nil {
			return err
		}
	case "prom":
		fmt.Println("\n--- telemetry (prometheus) ---")
		if err := telemetry.Default().WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	if srv := fw.OpsServer(); srv != nil && *hold > 0 {
		fmt.Printf("holding ops surface at http://%s for %s (ctrl-c to stop)\n", srv.Addr(), *hold)
		select {
		case <-time.After(*hold):
		case <-holdStop:
		}
	}
	return nil
}

// runArtifacts is the -artifacts inspect mode: it lists every entry of an
// artifact store and marks each one current or stale against the artifact
// inventory the current flags would consult. A stale entry can never be
// loaded under these flags (its fingerprinted inputs differ) — it is dead
// weight from another configuration, safe to delete.
func runArtifacts(dir, appName string, secrets int, seed uint64, candidates int, faultsFlag string, out io.Writer) error {
	store, err := artifact.Open(dir)
	if err != nil {
		return err
	}
	entries, err := store.List()
	if err != nil {
		return err
	}
	app, err := pickApp(appName, secrets)
	if err != nil {
		return err
	}
	faults, err := faultinject.Preset(faultsFlag, seed)
	if err != nil {
		return err
	}
	// Mirror the pipeline configuration of a plain aegisctl run so
	// "current" means "this exact invocation, minus -artifacts, would load
	// the entry".
	fw, err := aegis.New(aegis.Config{
		Seed:              seed,
		FuzzCandidates:    candidates,
		ProfileTraceTicks: 80,
		ProfileRepeats:    4,
		Faults:            faults,
	})
	if err != nil {
		return err
	}
	defer fw.Close()
	inventory, err := fw.ArtifactInventory(app)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "artifact store %s: %d entries\n", dir, len(entries))
	current, stale := 0, 0
	var bytes int64
	for _, e := range entries {
		status, label := "STALE", metaSummary(e.Meta)
		if l, ok := inventory[e.Fingerprint]; ok {
			status, label = "current", l
			current++
		} else {
			stale++
		}
		bytes += e.Size
		fmt.Fprintf(out, "%-14s %s %-14s %8dB %-7s %s\n",
			e.Kind, e.Fingerprint, e.Schema, e.Size, status, label)
	}
	fmt.Fprintf(out, "%d current under these flags, %d stale, %d bytes total\n",
		current, stale, bytes)
	return nil
}

// metaSummary renders an artifact's metadata as sorted k=v pairs.
func metaSummary(meta map[string]string) string {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+meta[k])
	}
	return strings.Join(parts, " ")
}

// runCtl is the -ctl client: it maps a short command onto one
// aegisd-ctl/v1 request against a running daemon and pretty-prints the
// JSON envelope. Non-2xx responses (shed submits, rejected reloads, bad
// tenants) become errors carrying the daemon's detail.
func runCtl(target string, args []string, out io.Writer) error {
	base, err := ctlURL(target)
	if err != nil {
		return err
	}
	if len(args) == 0 {
		args = []string{"status"}
	}
	cmd, rest := args[0], args[1:]
	var (
		method = "GET"
		path   string
		body   string
	)
	switch cmd {
	case "status":
		path = "daemon"
	case "list":
		path = "tenants"
	case "tenant":
		if len(rest) != 1 {
			return fmt.Errorf("usage: -ctl ... tenant <name>")
		}
		path = "tenant?name=" + url.QueryEscape(rest[0])
	case "attach":
		if len(rest) < 1 || len(rest) > 3 {
			return fmt.Errorf("usage: -ctl ... attach <name> [app [secrets]]")
		}
		spec := map[string]any{"name": rest[0]}
		if len(rest) > 1 {
			spec["app"] = rest[1]
		}
		if len(rest) > 2 {
			n, err := strconv.Atoi(rest[2])
			if err != nil {
				return fmt.Errorf("bad secrets count %q: %w", rest[2], err)
			}
			spec["secrets"] = n
		}
		raw, _ := json.Marshal(spec)
		method, path, body = "POST", "attach", string(raw)
	case "detach", "kill":
		if len(rest) != 1 {
			return fmt.Errorf("usage: -ctl ... %s <name>", cmd)
		}
		raw, _ := json.Marshal(map[string]any{"name": rest[0], "kill": cmd == "kill"})
		method, path, body = "POST", "detach", string(raw)
	case "submit":
		if len(rest) != 2 {
			return fmt.Errorf("usage: -ctl ... submit <name> <jobs>")
		}
		jobs, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad job count %q: %w", rest[1], err)
		}
		raw, _ := json.Marshal(map[string]any{"name": rest[0], "jobs": jobs})
		method, path, body = "POST", "submit", string(raw)
	case "reload":
		if len(rest) != 1 {
			return fmt.Errorf("usage: -ctl ... reload '<json>' (or @file)")
		}
		delta := rest[0]
		if strings.HasPrefix(delta, "@") {
			raw, err := os.ReadFile(delta[1:])
			if err != nil {
				return err
			}
			delta = string(raw)
		}
		method, path, body = "POST", "reload", delta
	default:
		return fmt.Errorf("unknown ctl command %q (want status, list, tenant, attach, detach, kill, submit or reload)", cmd)
	}

	req, err := http.NewRequest(method, base+path, strings.NewReader(body))
	if err != nil {
		return err
	}
	if method == "POST" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(raw)))
	}
	_, err = out.Write(raw)
	return err
}

// ctlURL normalises a -ctl target into the control-API base URL ending
// in /ctl/v1/.
func ctlURL(target string) (string, error) {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	u, err := url.Parse(target)
	if err != nil {
		return "", fmt.Errorf("bad -ctl target: %w", err)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/ctl/v1/"
	}
	u.RawQuery = ""
	return u.String(), nil
}

// runTail is the -tail client: it fetches /flight from a running ops
// server and prints the JSONL to stdout; with -follow it keeps polling
// ?since=<last seq> so new records stream as they are journaled.
func runTail(target string, follow bool, window int, out io.Writer) error {
	base, err := tailURL(target)
	if err != nil {
		return err
	}
	var since uint64
	first := true
	for {
		u := base
		q := url.Values{}
		if window > 0 && first {
			q.Set("window", fmt.Sprint(window))
		}
		if since > 0 {
			q.Set("since", fmt.Sprint(since))
		}
		if len(q) > 0 {
			u += "?" + q.Encode()
		}
		last, lines, err := fetchFlight(u, out, !first)
		if err != nil {
			return err
		}
		if last > since {
			since = last
		}
		_ = lines
		if !follow {
			return nil
		}
		first = false
		time.Sleep(tailPollInterval)
	}
}

// tailURL normalises a -tail target: a bare host:port becomes
// http://host:port/flight; a URL without a path gains /flight.
func tailURL(target string) (string, error) {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	u, err := url.Parse(target)
	if err != nil {
		return "", fmt.Errorf("bad -tail target: %w", err)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/flight"
	}
	u.RawQuery = ""
	return u.String(), nil
}

// fetchFlight streams one /flight response to w, returning the greatest
// record seq seen and the number of record lines. With skipHeader the
// header line is dropped (follow polls re-send it).
func fetchFlight(u string, w io.Writer, skipHeader bool) (uint64, int, error) {
	resp, err := http.Get(u)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return 0, 0, fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	var (
		last  uint64
		lines int
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	headerSeen := false
	for sc.Scan() {
		line := sc.Text()
		if !headerSeen {
			headerSeen = true
			if skipHeader {
				continue
			}
			fmt.Fprintln(w, line)
			continue
		}
		var rec struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err == nil && rec.Seq > last {
			last = rec.Seq
		}
		lines++
		fmt.Fprintln(w, line)
	}
	return last, lines, sc.Err()
}

func pickApp(name string, secrets int) (workload.App, error) {
	switch name {
	case "website":
		sites := workload.Websites()
		if secrets > 0 && secrets < len(sites) {
			sites = sites[:secrets]
		}
		return &workload.WebsiteApp{Sites: sites}, nil
	case "keystroke":
		maxKeys := secrets
		if maxKeys <= 0 || maxKeys > 10 {
			maxKeys = 10
		}
		return &workload.KeystrokeApp{MaxKeys: maxKeys}, nil
	case "dnn":
		zoo := workload.ModelZoo()
		if secrets > 0 && secrets < len(zoo) {
			zoo = zoo[:secrets]
		}
		return &workload.DNNApp{Models: zoo}, nil
	default:
		return nil, fmt.Errorf("unknown app %q (want website, keystroke or dnn)", name)
	}
}
