package aegis

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index) plus micro-benchmarks
// of the hot substrate paths. The table/figure benchmarks run the
// experiment harnesses at test scale and report the headline quantity as
// a custom metric; `go run ./cmd/aegis-bench` prints the full rows/series
// at evaluation scale.

import (
	"testing"

	"github.com/repro/aegis/internal/experiment"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/ml"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/workload"
)

func benchScale(i int) experiment.Scale {
	return experiment.TestScale(uint64(1000 + i))
}

// --- Tables -----------------------------------------------------------------

func BenchmarkTable1EventStatistics(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		res := experiment.Table1()
		events = res.Rows[0].Events
	}
	b.ReportMetric(float64(events), "intel-events")
}

func BenchmarkTable2EventDistribution(b *testing.B) {
	var remaining int
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table2(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		remaining = res.Rows[1].RemainingTotal // AMD row
	}
	b.ReportMetric(float64(remaining), "amd-remaining-events")
}

func BenchmarkTable3FuzzingTime(b *testing.B) {
	var throughput float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table3(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		throughput = res.Rows[1].Throughput
	}
	b.ReportMetric(throughput, "gadgets/sec")
}

// --- Figures ----------------------------------------------------------------

func BenchmarkFigure1AttackTraining(b *testing.B) {
	var wfa float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure1(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range res.Attacks {
			if a.Attack == experiment.WFA {
				wfa = a.VictimAcc
			}
		}
	}
	b.ReportMetric(wfa*100, "wfa-victim-acc-%")
}

func BenchmarkFigure3EventDistribution(b *testing.B) {
	var qq float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure3(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		qq = res.QQCorr
	}
	b.ReportMetric(qq, "qq-correlation")
}

func BenchmarkFigure8MutualInformation(b *testing.B) {
	var topMI float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure8(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) > 0 && len(res.Series[0].MI) > 0 {
			topMI = res.Series[0].MI[0]
		}
	}
	b.ReportMetric(topMI, "top-MI-bits")
}

func BenchmarkFigure9aDefenseEffectiveness(b *testing.B) {
	var defended float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure9a(benchScale(i), []float64{0.125, 8})
		if err != nil {
			b.Fatal(err)
		}
		defended = res.Accuracy(experiment.MechLaplace, 0.125, experiment.WFA)
	}
	b.ReportMetric(defended*100, "wfa-defended-acc-%")
}

func BenchmarkFigure9bAdaptiveAttacker(b *testing.B) {
	sc := benchScale(0)
	sc.Sites = 3
	sc.KeyClasses = 3
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure9b(sc, []float64{1.0 / 256, 8})
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy(experiment.MechDStar, 1.0/256, experiment.WFA)
	}
	b.ReportMetric(acc*100, "adaptive-wfa-acc-%")
}

func BenchmarkFigure9cResidualMutualInformation(b *testing.B) {
	var mi float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure9c(benchScale(i), []float64{0.125, 8})
		if err != nil {
			b.Fatal(err)
		}
		mi = res.MI(experiment.MechLaplace, 0.125)
	}
	b.ReportMetric(mi, "residual-MI-bits")
}

func BenchmarkFigure10Overhead(b *testing.B) {
	var latency float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure10(benchScale(i), []float64{1})
		if err != nil {
			b.Fatal(err)
		}
		if p, ok := res.Point(experiment.MechLaplace, 1, "website"); ok {
			latency = p.LatencyOverhead
		}
	}
	b.ReportMetric(latency*100, "latency-overhead-%")
}

func BenchmarkFigure11RandomNoiseBaseline(b *testing.B) {
	var randomAcc float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.Figure11(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		randomAcc = res.Points[0].Accuracy
	}
	b.ReportMetric(randomAcc*100, "random-0.1p-acc-%")
}

func BenchmarkConstantOutputBaseline(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.ConstantOutputComparison(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio()
	}
	b.ReportMetric(ratio, "constant/laplace-noise")
}

// --- Ablations ----------------------------------------------------------------

func BenchmarkAblationSetCover(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationSetCover(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		reduction = res.Reduction()
	}
	b.ReportMetric(reduction, "per-event/cover")
}

func BenchmarkAblationPCA(b *testing.B) {
	var overlap float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationPCA(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		overlap = res.TopOverlap
	}
	b.ReportMetric(overlap, "top4-overlap")
}

func BenchmarkAblationConfirmation(b *testing.B) {
	var fp float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.AblationConfirmation(benchScale(i))
		if err != nil {
			b.Fatal(err)
		}
		fp = res.FalsePositiveRate()
	}
	b.ReportMetric(fp*100, "false-positive-%")
}

func BenchmarkAblationNoiseBuffer(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res := experiment.AblationNoiseBuffer(1 << 18)
		speedup = res.Speedup()
	}
	b.ReportMetric(speedup, "direct/buffered")
}

// --- Substrate micro-benchmarks -----------------------------------------------

func BenchmarkCacheAccess(b *testing.B) {
	c := microarch.NewCache(microarch.CacheConfig{Sets: 64, Ways: 8, LineSize: 64})
	r := rng.New(1)
	addrs := make([]uint64, 1024)
	for i := range addrs {
		addrs[i] = r.Uint64() % (1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}

func BenchmarkCoreExecuteLoad(b *testing.B) {
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	ctx := microarch.NewWorkloadContext(0x10000, 1<<18, rng.New(2))
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	var load isa.Variant
	for _, v := range legal {
		if v.Class == isa.ClassLoad {
			load = v
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Execute(load, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPMURead(b *testing.B) {
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	pmu := hpc.NewPMU(core, rng.New(3).Split("pmu"))
	cat := hpc.NewAMDEpyc7252Catalog(1)
	if err := pmu.Program(0, cat.MustByName("RETIRED_UOPS")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pmu.RDPMC(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorldTick(b *testing.B) {
	world := sev.NewWorld(sev.DefaultConfig(4))
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		b.Fatal(err)
	}
	runner := workload.NewRunner("bench", workload.DefaultLibrary(1), rng.New(5).Split("r"))
	for i := 0; i < 1000; i++ {
		runner.Enqueue(workload.WebsiteJob("google.com", rng.New(uint64(i)).Split("l")))
	}
	if err := vm.AddProcess(0, runner); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world.Step()
	}
}

func BenchmarkLaplaceMechanismNoise(b *testing.B) {
	m, err := obfuscator.NewLaplaceMechanism(1, 1500, rng.New(6).Split("lap"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Noise(int64(i), 0)
	}
}

func BenchmarkDStarMechanismNoise(b *testing.B) {
	m, err := obfuscator.NewDStarMechanism(1, 1500, rng.New(7).Split("dstar"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(i + 1)
		n := m.Noise(t, 0)
		m.Commit(t, n)
	}
}

func BenchmarkMLPTrainEpoch(b *testing.B) {
	r := rng.New(8)
	xs := make([][]float64, 64)
	ys := make([]int, 64)
	for i := range xs {
		x := make([]float64, 128)
		for j := range x {
			x[j] = r.Gaussian(0, 1)
		}
		xs[i] = x
		ys[i] = i % 4
	}
	m, err := ml.NewMLP(ml.DefaultMLPConfig(128, 4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Train(xs, ys, 1, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGRUCTCTrainStep(b *testing.B) {
	r := rng.New(9)
	const T, dim = 60, 4
	xs := make([][]float64, T)
	for t := range xs {
		row := make([]float64, dim)
		for j := range row {
			row[j] = r.Gaussian(0, 1)
		}
		xs[t] = row
	}
	label := []int{0, 2, 1, 3, 0}
	m, err := ml.NewBiGRUCTC(ml.DefaultGRUConfig(dim, 7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainStep(xs, label); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCTCLoss(b *testing.B) {
	r := rng.New(10)
	const T, classes = 80, 7
	logits := make([][]float64, T)
	for t := range logits {
		row := make([]float64, classes+1)
		for j := range row {
			row[j] = r.Gaussian(0, 1)
		}
		logits[t] = row
	}
	label := []int{0, 1, 2, 3, 4, 5, 6, 0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.CTCLoss(logits, label, classes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkISACleanup(b *testing.B) {
	spec := isa.SpecAMDEpyc(1)
	feats := isa.AMDEpycFeatures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		isa.Cleanup(spec, feats)
	}
}
