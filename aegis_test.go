package aegis

import (
	"errors"
	"strings"
	"testing"

	"github.com/repro/aegis/internal/profiler"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/workload"
)

func smallFramework(t *testing.T) *Framework {
	t.Helper()
	fw, err := New(Config{
		Seed:              1,
		ProfileTraceTicks: 50,
		ProfileRepeats:    4,
		FuzzCandidates:    150,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestNewDefaults(t *testing.T) {
	fw, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Catalog().Processor != "AMD EPYC 7252" {
		t.Errorf("default processor = %q", fw.Catalog().Processor)
	}
	if fw.LegalInstructions() != 3407 {
		t.Errorf("legal instructions = %d, want 3407", fw.LegalInstructions())
	}
}

func TestNewIntelPlatform(t *testing.T) {
	fw, err := New(Config{Processor: "Intel Xeon E5-1650"})
	if err != nil {
		t.Fatal(err)
	}
	if fw.LegalInstructions() != 3386 {
		t.Errorf("intel legal instructions = %d, want 3386", fw.LegalInstructions())
	}
}

func TestNewUnknownProcessor(t *testing.T) {
	if _, err := New(Config{Processor: "Quantum 9000"}); err == nil {
		t.Error("unknown processor accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	fw := smallFramework(t)
	app := &workload.WebsiteApp{Sites: []string{"google.com", "youtube.com", "github.com"}}

	profile, err := fw.Profile(app)
	if err != nil {
		t.Fatal(err)
	}
	if profile.TotalEvents != 1903 {
		t.Errorf("total events = %d", profile.TotalEvents)
	}
	if profile.WarmupRemaining == 0 || profile.WarmupRemaining > 300 {
		t.Errorf("warmup remaining = %d", profile.WarmupRemaining)
	}
	top := profile.Top(4)
	if len(top) != 4 {
		t.Fatalf("top events = %v", top)
	}

	gadgets, err := fw.Fuzz(top)
	if err != nil {
		t.Fatal(err)
	}
	if gadgets.CoverSize == 0 || gadgets.SegmentLen == 0 {
		t.Fatalf("gadget set = %+v", gadgets)
	}
	if gadgets.CoverSize > len(top) {
		t.Errorf("cover size %d exceeds event count %d", gadgets.CoverSize, len(top))
	}

	world := sev.NewWorld(sev.DefaultConfig(2))
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	obf, err := fw.Protect(vm, 0, gadgets, MechanismLaplace, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	world.Run(50)
	if obf.InjectedReps() == 0 {
		t.Error("protected VM injected no noise in 50 ticks")
	}
}

func TestProfileTopClamps(t *testing.T) {
	p := &Profile{Ranked: []profiler.RankedEvent{}}
	if got := p.Top(0); len(got) != 0 {
		t.Errorf("Top(0) on empty profile = %v", got)
	}
	// Synthesize a small ranking via a real framework catalog so the
	// events carry names.
	fw := smallFramework(t)
	ev1, _ := fw.Catalog().ByName("RETIRED_UOPS")
	ev2, _ := fw.Catalog().ByName("LS_DISPATCH")
	p = &Profile{Ranked: []profiler.RankedEvent{{Event: ev1, MI: 2}, {Event: ev2, MI: 1}}}
	if got := p.Top(0); len(got) != 0 {
		t.Errorf("Top(0) = %v, want empty", got)
	}
	if got := p.Top(-3); len(got) != 0 {
		t.Errorf("Top(-3) = %v, want empty", got)
	}
	got := p.Top(10) // n > len(Ranked) clamps to the full ranking
	if len(got) != 2 || got[0] != "RETIRED_UOPS" || got[1] != "LS_DISPATCH" {
		t.Errorf("Top(10) = %v", got)
	}
}

func TestFuzzUnknownEvent(t *testing.T) {
	fw := smallFramework(t)
	if _, err := fw.Fuzz([]string{"NOT_AN_EVENT"}); !errors.Is(err, ErrUnknownEvent) {
		t.Errorf("unknown event error = %v", err)
	}
	if _, err := fw.Fuzz(nil); err == nil {
		t.Error("empty event list accepted")
	}
}

func TestNewDefenseMechanisms(t *testing.T) {
	fw := smallFramework(t)
	gadgets, err := fw.Fuzz([]string{"RETIRED_UOPS", "LS_DISPATCH"})
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []string{MechanismLaplace, MechanismDStar, MechanismRandom, MechanismConstant} {
		factory, err := fw.NewDefense(gadgets, mech, 1)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if _, err := factory(3); err != nil {
			t.Errorf("%s factory: %v", mech, err)
		}
	}
	if _, err := fw.NewDefense(gadgets, "bogus", 1); !errors.Is(err, ErrUnknownMechanism) {
		t.Errorf("bogus mechanism error = %v", err)
	}
	if _, err := fw.NewDefense(nil, MechanismLaplace, 1); !errors.Is(err, ErrNoGadgets) {
		t.Errorf("nil gadget set error = %v", err)
	}
}

func TestProtectMulti(t *testing.T) {
	fw := smallFramework(t)
	gadgets, err := fw.Fuzz([]string{"RETIRED_UOPS", "LS_DISPATCH"})
	if err != nil {
		t.Fatal(err)
	}
	world := sev.NewWorld(sev.DefaultConfig(5))
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProtectMulti(vm, 0, gadgets, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Multi.Plans() == 0 {
		t.Fatal("no plans deployed")
	}
	if len(res.ProtectedEvents)+len(res.SkippedEvents) != len(gadgets.Events) {
		t.Errorf("protected %v + skipped %v != requested %v",
			res.ProtectedEvents, res.SkippedEvents, gadgets.Events)
	}
	world.Run(60)
	if res.Multi.InjectedReps() == 0 {
		t.Error("multi-event deployment injected nothing")
	}
	if _, err := fw.ProtectMulti(vm, 0, nil, 1.0); !errors.Is(err, ErrNoGadgets) {
		t.Errorf("nil gadget set error = %v", err)
	}
}

func TestProtectMultiReportsSkippedEvents(t *testing.T) {
	fw := smallFramework(t)
	gadgets, err := fw.Fuzz([]string{"RETIRED_UOPS"})
	if err != nil {
		t.Fatal(err)
	}
	// Request an extra event that fuzzing never confirmed a gadget for.
	gadgets.Events = append(gadgets.Events, "LS_DISPATCH")
	world := sev.NewWorld(sev.DefaultConfig(7))
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.ProtectMulti(vm, 0, gadgets, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkippedEvents) != 1 || res.SkippedEvents[0] != "LS_DISPATCH" {
		t.Errorf("skipped = %v, want [LS_DISPATCH]", res.SkippedEvents)
	}
	if len(res.ProtectedEvents) != 1 || res.ProtectedEvents[0] != "RETIRED_UOPS" {
		t.Errorf("protected = %v, want [RETIRED_UOPS]", res.ProtectedEvents)
	}
}

func TestProtectMultiAllSkippedFails(t *testing.T) {
	fw := smallFramework(t)
	gadgets, err := fw.Fuzz([]string{"RETIRED_UOPS"})
	if err != nil {
		t.Fatal(err)
	}
	// Every requested event lacks a confirmed gadget.
	gadgets.Events = []string{"LS_DISPATCH", "DATA_CACHE_ACCESSES"}
	world := sev.NewWorld(sev.DefaultConfig(8))
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fw.ProtectMulti(vm, 0, gadgets, 1.0)
	if !errors.Is(err, ErrNoGadgets) {
		t.Fatalf("all-skipped error = %v, want ErrNoGadgets", err)
	}
	for _, name := range gadgets.Events {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name skipped event %s", err, name)
		}
	}
}
