// Website fingerprinting (paper §III-C): a malicious hypervisor watches
// four HPC events of the core backing a SEV guest's vCPU while a browser
// inside loads websites, trains a classifier on the leakage traces, and
// predicts which site the victim visits — then the same attack is repeated
// against a VM protected by Aegis.
//
// Run with:
//
//	go run ./examples/website-fingerprinting
package main

import (
	"fmt"
	"log"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sites := workload.Websites()[:6]
	scenario := &attack.Scenario{
		App:             &workload.WebsiteApp{Sites: sites},
		Catalog:         hpc.NewAMDEpyc7252Catalog(1),
		TracesPerSecret: 10,
		TraceTicks:      100,
		Seed:            1,
	}

	// Offline phase: the attacker profiles a template VM.
	fmt.Printf("attacker: collecting %d traces per site over %v\n",
		scenario.TracesPerSecret, sites)
	cleanData, err := scenario.Collect(nil)
	if err != nil {
		return err
	}
	cfg := attack.DefaultTrainConfig(1)
	cfg.Epochs = 20
	clf, stats, err := attack.TrainClassifier(cleanData, cfg)
	if err != nil {
		return err
	}
	fmt.Println("training curve (paper Fig. 1a):")
	for _, st := range stats {
		if st.Epoch%4 == 0 || st.Epoch == 1 {
			fmt.Printf("  epoch %2d: val accuracy %5.1f%%\n", st.Epoch, st.ValAcc*100)
		}
	}

	// Online phase 1: undefended victim.
	victim := *scenario
	victim.Seed = 99
	victim.TracesPerSecret = 4
	victimData, err := victim.Collect(nil)
	if err != nil {
		return err
	}
	cleanAcc, err := clf.Evaluate(victimData)
	if err != nil {
		return err
	}

	// Online phase 2: the victim deploys Aegis.
	fw, err := aegis.New(aegis.Config{Seed: 1, FuzzCandidates: 300})
	if err != nil {
		return err
	}
	gadgets, err := fw.Fuzz(attack.DefaultEventNames())
	if err != nil {
		return err
	}
	defense, err := fw.NewDefense(gadgets, aegis.MechanismLaplace, 0.25)
	if err != nil {
		return err
	}
	defendedVictim := *scenario
	defendedVictim.Seed = 123
	defendedVictim.TracesPerSecret = 4
	defendedData, err := defendedVictim.Collect(attack.DefenseFactory(defense))
	if err != nil {
		return err
	}
	defendedAcc, err := clf.Evaluate(defendedData)
	if err != nil {
		return err
	}

	fmt.Printf("\nattack accuracy on the victim VM:\n")
	fmt.Printf("  undefended:          %5.1f%%\n", cleanAcc*100)
	fmt.Printf("  Aegis (laplace 2^-2): %5.1f%%\n", defendedAcc*100)
	fmt.Printf("  random guess:        %5.1f%%\n", 100/float64(len(sites)))
	return nil
}
