// Cryptographic key recovery (paper §X future work, and the classic HPC
// attack of paper reference [20]): a square-and-multiply modular
// exponentiation inside the SEV guest leaks its exponent bits through the
// HPC trace — 1-bits add a multiply burst per bit window. The attacker
// learns to identify which of the candidate keys is in use; Aegis's
// injected noise removes the pattern.
//
// Run with:
//
//	go run ./examples/crypto-key-recovery
package main

import (
	"fmt"
	"log"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	app := &workload.CryptoApp{NumKeys: 6}
	for _, k := range app.Secrets() {
		w, err := workload.HammingWeight(k)
		if err != nil {
			return err
		}
		fmt.Printf("candidate %s (hamming weight %d)\n", k, w)
	}

	scenario := &attack.Scenario{
		App:             app,
		Catalog:         hpc.NewAMDEpyc7252Catalog(1),
		TracesPerSecret: 10,
		TraceTicks:      90,
		Seed:            13,
	}
	fmt.Println("\nattacker: recording modular-exponentiation traces...")
	cleanData, err := scenario.Collect(nil)
	if err != nil {
		return err
	}
	cfg := attack.DefaultTrainConfig(13)
	cfg.Epochs = 20
	clf, stats, err := attack.TrainClassifier(cleanData, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trained: final val accuracy %.1f%%\n", stats[len(stats)-1].ValAcc*100)

	victim := *scenario
	victim.Seed = 113
	victim.TracesPerSecret = 4
	victimData, err := victim.Collect(nil)
	if err != nil {
		return err
	}
	cleanAcc, err := clf.Evaluate(victimData)
	if err != nil {
		return err
	}

	fw, err := aegis.New(aegis.Config{Seed: 13, FuzzCandidates: 300})
	if err != nil {
		return err
	}
	gadgets, err := fw.Fuzz(attack.DefaultEventNames())
	if err != nil {
		return err
	}
	defense, err := fw.NewDefense(gadgets, aegis.MechanismLaplace, 0.25)
	if err != nil {
		return err
	}
	defended := *scenario
	defended.Seed = 131
	defended.TracesPerSecret = 4
	defendedData, err := defended.Collect(attack.DefenseFactory(defense))
	if err != nil {
		return err
	}
	defendedAcc, err := clf.Evaluate(defendedData)
	if err != nil {
		return err
	}

	fmt.Printf("\nkey identification accuracy:\n")
	fmt.Printf("  undefended:           %5.1f%%\n", cleanAcc*100)
	fmt.Printf("  Aegis (laplace 2^-2): %5.1f%%\n", defendedAcc*100)
	fmt.Printf("  random guess:         %5.1f%%\n", 100.0/6)
	return nil
}
