// Quickstart: the Aegis pipeline in one page.
//
// Launch a SEV guest running a browser workload, profile which HPC events
// leak its secrets, fuzz instruction gadgets for the worst leakers, deploy
// the DP obfuscator on the victim's vCPU, and show the host-observed
// counter values before and after.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A framework for the attested processor model.
	fw, err := aegis.New(aegis.Config{
		Seed:              42,
		FuzzCandidates:    300,
		ProfileTraceTicks: 60,
		ProfileRepeats:    4,
	})
	if err != nil {
		return err
	}
	fmt.Printf("platform %s: %d legal instruction variants\n",
		fw.Catalog().Processor, fw.LegalInstructions())

	// 2. Profile the protected application (a browser visiting sites).
	app := &workload.WebsiteApp{Sites: []string{"google.com", "youtube.com", "github.com"}}
	profile, err := fw.Profile(app)
	if err != nil {
		return err
	}
	fmt.Printf("profiler: %d/%d events respond to the app; top leakers:\n",
		profile.WarmupRemaining, profile.TotalEvents)
	for i, re := range profile.Ranked[:4] {
		fmt.Printf("  %d. %-40s %.3f bits\n", i+1, re.Event.Name, re.MI)
	}

	// 3. Fuzz gadgets and build the minimal cover.
	gadgets, err := fw.Fuzz(profile.Top(4))
	if err != nil {
		return err
	}
	fmt.Printf("fuzzer: %d gadgets cover all %d events (segment %d instructions)\n",
		gadgets.CoverSize, len(gadgets.Events), gadgets.SegmentLen)

	// 4. A victim world: malicious host, SEV guest, browser inside.
	observe := func(defended bool) (float64, error) {
		world := sev.NewWorld(sev.DefaultConfig(7))
		vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
		if err != nil {
			return 0, err
		}
		stream := rng.New(7).Split("quickstart")
		runner := workload.NewRunner("browser", workload.DefaultLibrary(1), stream.Split("runner"))
		runner.Enqueue(workload.WebsiteJob("github.com", stream.Split("load")))
		if err := vm.AddProcess(0, runner); err != nil {
			return 0, err
		}
		if defended {
			if _, err := fw.Protect(vm, 0, gadgets, aegis.MechanismLaplace, 0.5); err != nil {
				return 0, err
			}
		}
		// The hypervisor cannot read guest memory...
		if _, err := vm.HostReadMemory(0, 16); err != nil {
			fmt.Printf("host memory read: %v\n", err)
		}
		// ...but it can watch the physical core's HPCs.
		coreIdx, err := vm.PhysicalCore(0)
		if err != nil {
			return 0, err
		}
		core, err := world.Core(coreIdx)
		if err != nil {
			return 0, err
		}
		pmu := hpc.NewPMU(core, nil)
		if err := pmu.Program(0, fw.Catalog().MustByName("RETIRED_UOPS")); err != nil {
			return 0, err
		}
		world.Run(60)
		return pmu.RDPMC(0)
	}

	clean, err := observe(false)
	if err != nil {
		return err
	}
	noisy, err := observe(true)
	if err != nil {
		return err
	}
	fmt.Printf("\nhost-observed RETIRED_UOPS over 60 ticks:\n")
	fmt.Printf("  without Aegis: %10.0f (the app's true activity)\n", clean)
	fmt.Printf("  with Aegis:    %10.0f (+%.0f%% obfuscating noise)\n",
		noisy, (noisy/clean-1)*100)
	return nil
}
