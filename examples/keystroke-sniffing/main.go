// Keystroke sniffing (paper §III-D): the attacker observes HPC traces
// while the victim types inside the SEV guest (an xdotool-style generator
// fires K keystrokes in the observation window) and infers how many keys
// were pressed, whose timing patterns reveal what was typed. The d*
// mechanism then obfuscates the bursts.
//
// Run with:
//
//	go run ./examples/keystroke-sniffing
package main

import (
	"fmt"
	"log"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scenario := &attack.Scenario{
		App:             &workload.KeystrokeApp{WindowTicks: 120, MaxKeys: 6},
		Catalog:         hpc.NewAMDEpyc7252Catalog(1),
		TracesPerSecret: 14,
		TraceTicks:      120,
		Seed:            5,
	}
	fmt.Println("attacker: recording keystroke windows (0-5 keys per window)...")
	cleanData, err := scenario.Collect(nil)
	if err != nil {
		return err
	}
	cfg := attack.DefaultTrainConfig(5)
	cfg.Epochs = 25
	clf, stats, err := attack.TrainClassifier(cleanData, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trained: final val accuracy %.1f%% (paper Fig. 1b reaches 95%%)\n",
		stats[len(stats)-1].ValAcc*100)

	victim := *scenario
	victim.Seed = 77
	victim.TracesPerSecret = 5
	victimData, err := victim.Collect(nil)
	if err != nil {
		return err
	}
	cleanAcc, err := clf.Evaluate(victimData)
	if err != nil {
		return err
	}

	// Defense: d* suits reinforcing protection of correlated time series
	// like keystroke timing (paper §VII-B comparison).
	fw, err := aegis.New(aegis.Config{Seed: 5, FuzzCandidates: 300})
	if err != nil {
		return err
	}
	gadgets, err := fw.Fuzz(attack.DefaultEventNames())
	if err != nil {
		return err
	}
	defense, err := fw.NewDefense(gadgets, aegis.MechanismDStar, 0.5)
	if err != nil {
		return err
	}
	defended := *scenario
	defended.Seed = 88
	defended.TracesPerSecret = 5
	defendedData, err := defended.Collect(attack.DefenseFactory(defense))
	if err != nil {
		return err
	}
	defendedAcc, err := clf.Evaluate(defendedData)
	if err != nil {
		return err
	}

	fmt.Printf("\nkeystroke-count inference accuracy:\n")
	fmt.Printf("  undefended:       %5.1f%%\n", cleanAcc*100)
	fmt.Printf("  Aegis (d* 2^-1):  %5.1f%%\n", defendedAcc*100)
	fmt.Printf("  random guess:     %5.1f%%\n", 100.0/6)
	return nil
}
