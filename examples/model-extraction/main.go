// Model extraction (paper §III-E): the attacker transcribes the HPC trace
// of a DNN inference running inside the SEV guest into the model's
// layer-type sequence with a bidirectional GRU + CTC decoder, stealing the
// architecture. Aegis's injected gadget noise then corrupts the layer
// signatures.
//
// Run with:
//
//	go run ./examples/model-extraction
package main

import (
	"fmt"
	"log"
	"strings"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	zoo := workload.ModelZoo()
	// One representative per family: VGG-style, ResNet-style, MobileNet-style.
	victims := []workload.ModelArch{zoo[0], zoo[10], zoo[20]}
	app := &workload.DNNApp{Models: victims}
	for _, m := range victims {
		fmt.Printf("victim model %-14s: %d layers (%s...)\n",
			m.Name, len(m.Layers), prefix(m.SequenceString(), 40))
	}

	scenario := &attack.Scenario{
		App:             app,
		Catalog:         hpc.NewAMDEpyc7252Catalog(1),
		TracesPerSecret: 10,
		TraceTicks:      130,
		Seed:            9,
	}
	fmt.Println("\nattacker: recording inference traces...")
	cleanData, err := scenario.Collect(nil)
	if err != nil {
		return err
	}
	cfg := attack.DefaultSequenceTrainConfig(9)
	cfg.Epochs = 10
	atk, stats, err := attack.TrainSequenceAttack(cleanData, app, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("GRU+CTC trained: val layer accuracy %.1f%% after %d epochs\n",
		stats[len(stats)-1].ValAcc*100, len(stats))

	// Transcribe one victim trace.
	pred, err := atk.Predict(cleanData.Traces[0])
	if err != nil {
		return err
	}
	var names []string
	for _, l := range pred {
		names = append(names, l.String())
	}
	fmt.Printf("sample transcription of %s: %s...\n",
		cleanData.Traces[0].Label, prefix(strings.Join(names, "-"), 60))

	victimSc := *scenario
	victimSc.Seed = 99
	victimSc.TracesPerSecret = 3
	victimData, err := victimSc.Collect(nil)
	if err != nil {
		return err
	}
	cleanAcc, err := atk.Evaluate(victimData)
	if err != nil {
		return err
	}

	fw, err := aegis.New(aegis.Config{Seed: 9, FuzzCandidates: 300})
	if err != nil {
		return err
	}
	gadgets, err := fw.Fuzz(attack.DefaultEventNames())
	if err != nil {
		return err
	}
	defense, err := fw.NewDefense(gadgets, aegis.MechanismLaplace, 0.25)
	if err != nil {
		return err
	}
	defendedSc := *scenario
	defendedSc.Seed = 111
	defendedSc.TracesPerSecret = 3
	defendedData, err := defendedSc.Collect(attack.DefenseFactory(defense))
	if err != nil {
		return err
	}
	defendedAcc, err := atk.Evaluate(defendedData)
	if err != nil {
		return err
	}

	fmt.Printf("\nlayer-sequence extraction accuracy:\n")
	fmt.Printf("  undefended:           %5.1f%%\n", cleanAcc*100)
	fmt.Printf("  Aegis (laplace 2^-2): %5.1f%%\n", defendedAcc*100)
	return nil
}

func prefix(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
