//go:build !race

// Allocation gates for the steady-state hot paths (`make bench-alloc`).
// Each gate warms the path up, then asserts 0 allocs/op with
// testing.AllocsPerRun. The file is excluded under -race because race
// instrumentation itself allocates; `make race` still exercises the same
// code paths for data races through the regular tests.
//
// These gates have a static twin: every function exercised here carries a
// //aegis:hotpath annotation, and the aegis-lint hotpath rule (`make lint`,
// internal/analysis/rule_hotpath.go) rejects allocating constructs in
// annotated functions at review time, before a benchmark ever runs.
package aegis

import (
	"testing"

	"github.com/repro/aegis/internal/benchkit"
	"github.com/repro/aegis/internal/daemon"
	"github.com/repro/aegis/internal/daemon/daemontest"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/stats"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
	"github.com/repro/aegis/internal/workload"
)

// quietTelemetry disables the default registry for the test (the hot-path
// configuration the experiment harness runs with via -telemetry=false) and
// restores it afterwards. With the registry enabled, a tick additionally
// allocates one tracing span — the cost of observability, not the
// substrate.
func quietTelemetry(t *testing.T) {
	t.Helper()
	reg := telemetry.Default()
	was := reg.Enabled()
	reg.SetEnabled(false)
	t.Cleanup(func() { reg.SetEnabled(was) })
}

// loudFlight pins the flight recorder ON for a gate and restores it
// afterwards. Unlike the telemetry registry, the recorder does not get
// quieted: the acceptance bar for these gates is 0 allocs/op WITH
// incident recording enabled, so the always-on journal is free on the
// steady-state paths.
func loudFlight(t *testing.T) *flight.Recorder {
	t.Helper()
	rec := flight.Default()
	was := rec.Enabled()
	rec.SetEnabled(true)
	t.Cleanup(func() { rec.SetEnabled(was) })
	return rec
}

// requireZeroAllocs asserts a warmed-up path allocates nothing per run.
func requireZeroAllocs(t *testing.T, name string, runs int, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(runs, f); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

// TestZeroAllocRDPMC gates the noisy counter read, the innermost operation
// of the fuzzer's measurement loop and the obfuscator's kernel module.
func TestZeroAllocRDPMC(t *testing.T) {
	quietTelemetry(t)
	loudFlight(t)
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	pmu := hpc.NewPMU(core, rng.New(3).Split("pmu"))
	cat := hpc.NewAMDEpyc7252Catalog(1)
	if err := pmu.Program(0, cat.MustByName("RETIRED_UOPS")); err != nil {
		t.Fatal(err)
	}
	requireZeroAllocs(t, "PMU.RDPMC", 512, func() {
		if _, err := pmu.RDPMC(0); err != nil {
			t.Fatal(err)
		}
	})
}

// TestZeroAllocReadAllInto gates the index-keyed bulk read that replaced
// the per-tick map-allocating ReadAll on hot paths.
func TestZeroAllocReadAllInto(t *testing.T) {
	quietTelemetry(t)
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	pmu := hpc.NewPMU(core, rng.New(4).Split("pmu"))
	cat := hpc.NewAMDEpyc7252Catalog(1)
	if err := pmu.Program(0, cat.MustByName("RETIRED_UOPS")); err != nil {
		t.Fatal(err)
	}
	if err := pmu.Program(2, cat.MustByName("LS_DISPATCH")); err != nil {
		t.Fatal(err)
	}
	var buf [hpc.NumCounterRegisters]float64
	requireZeroAllocs(t, "PMU.ReadAllInto", 512, func() {
		pmu.ReadAllInto(buf[:])
	})
}

// TestZeroAllocWorldStep gates one scheduler tick of a 1-vCPU SEV guest in
// its idle steady state — the per-tick cost every experiment pays per
// sample.
func TestZeroAllocWorldStep(t *testing.T) {
	quietTelemetry(t)
	rec := loudFlight(t)
	before := rec.Total()
	world := sev.NewWorld(sev.DefaultConfig(4))
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	runner := workload.NewRunner("gate", workload.DefaultLibrary(1), rng.New(5).Split("r"))
	if err := vm.AddProcess(0, runner); err != nil {
		t.Fatal(err)
	}
	world.Run(8) // settle into the idle steady state
	requireZeroAllocs(t, "World.Step", 256, func() { world.Step() })
	if rec.Total() == before {
		t.Error("no world-step summaries journaled: the gate must cover the recording path")
	}
}

// TestZeroAllocObfuscatorTick gates the full per-tick protection loop
// (kernel-module read, noise draw, clip, gadget injection) for both DP
// mechanisms, driven through World.Step like a deployed obfuscator.
func TestZeroAllocObfuscatorTick(t *testing.T) {
	quietTelemetry(t)
	rec := loudFlight(t)
	before := rec.Total()
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ref := cat.MustByName("RETIRED_UOPS")
	seg := benchSegment(t)
	for _, tc := range []struct {
		name string
		mech func() (obfuscator.Mechanism, error)
	}{
		{"laplace", func() (obfuscator.Mechanism, error) {
			return obfuscator.NewLaplaceMechanism(1, 1500, rng.New(6).Split("lap"))
		}},
		{"dstar", func() (obfuscator.Mechanism, error) {
			return obfuscator.NewDStarMechanism(1, 1500, rng.New(7).Split("dstar"))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mech, err := tc.mech()
			if err != nil {
				t.Fatal(err)
			}
			obf, err := obfuscator.New(obfuscator.Config{
				Mechanism: mech,
				Segment:   seg,
				RefEvent:  ref,
				ClipBound: 20000,
				Seed:      11,
			})
			if err != nil {
				t.Fatal(err)
			}
			world := sev.NewWorld(sev.DefaultConfig(9))
			vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.AddProcess(0, obf); err != nil {
				t.Fatal(err)
			}
			world.Run(8) // attach the kernel module, settle the caches
			requireZeroAllocs(t, "obfuscator tick "+tc.name, 128, func() { world.Step() })
		})
	}
	if rec.Total() == before {
		t.Error("no obfuscator-tick records journaled: the gate must cover the recording path")
	}
}

// TestZeroAllocDaemonTick gates the daemon's steady-state tick — the
// per-tenant fan-out plus the serialized journal barrier — with one
// protecting tenant and an empty queue, the configuration a healthy
// multi-tenant deployment spends its life in. The daemon journal is its
// own always-enabled recorder, so the gate covers the recording path.
func TestZeroAllocDaemonTick(t *testing.T) {
	quietTelemetry(t)
	loudFlight(t)
	d, err := daemon.New(daemontest.BaseConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(daemon.AttachSpec{Name: "gate"}); err != nil {
		t.Fatal(err)
	}
	d.Run(8) // promote to Protecting, settle the guest caches
	before := d.Journal().Total()
	requireZeroAllocs(t, "daemon.Step", 256, func() { d.Step() })
	if d.Journal().Total() == before {
		t.Error("no tick summaries journaled: the gate must cover the recording path")
	}
}

// TestZeroAllocFlightRecord gates the recorder write itself: enabled, a
// journaled record is a mutex-guarded ring store plus counter bumps;
// disabled, it is a single atomic load. Neither may allocate.
func TestZeroAllocFlightRecord(t *testing.T) {
	quietTelemetry(t)
	rec := flight.NewRecorder(1024)
	h := rec.Handle(flight.KindFault)
	requireZeroAllocs(t, "flight.Handle.Record", 512, func() {
		h.Record(1, flight.CodeFaultPMURead, flight.CodeNone, 1, 2, 3)
	})
	requireZeroAllocs(t, "flight.Handle.Incident", 512, func() {
		h.Incident(2, flight.CodeFaultCounterSaturation, flight.CodeNone, 1, 2, 3)
	})
	if rec.Total() == 0 || rec.Incidents() == 0 {
		t.Fatalf("gate wrote nothing: total=%d incidents=%d", rec.Total(), rec.Incidents())
	}
	rec.SetEnabled(false)
	requireZeroAllocs(t, "flight.Handle.Record disabled", 512, func() {
		h.Record(3, flight.CodeFaultPMURead, flight.CodeNone, 0, 0, 0)
	})
}

// TestZeroAllocStatsScratch gates the arena-reusing numeric kernels at the
// shapes the profiler's scoring loop uses.
func TestZeroAllocStatsScratch(t *testing.T) {
	rows := benchkit.PCARows(72, 150)
	slab := benchkit.PCASlab(72, 150)
	classes := benchkit.MIClasses(6)
	xs, ys := benchkit.BinnedPairs(400)
	var s stats.Scratch
	requireZeroAllocs(t, "Scratch.FitPCA", 32, func() {
		if _, err := s.FitPCA(rows, 1); err != nil {
			t.Fatal(err)
		}
	})
	requireZeroAllocs(t, "Scratch.FitPCASlab", 32, func() {
		if _, err := s.FitPCASlab(slab, 72, 150, 1); err != nil {
			t.Fatal(err)
		}
	})
	requireZeroAllocs(t, "Scratch.MutualInformation", 32, func() {
		if _, err := s.MutualInformation(classes, 600); err != nil {
			t.Fatal(err)
		}
	})
	requireZeroAllocs(t, "Scratch.BinnedMI", 32, func() {
		if _, err := s.BinnedMI(xs, ys, 16); err != nil {
			t.Fatal(err)
		}
	})
	requireZeroAllocs(t, "Scratch.MedianOf", 64, func() { s.MedianOf(xs) })
	requireZeroAllocs(t, "Scratch.PercentileOf", 64, func() { s.PercentileOf(ys, 99) })
}
