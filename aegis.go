// Package aegis is the public facade of the Aegis framework, a defense
// that protects confidential VMs (AMD SEV guests) against hardware
// performance counter (HPC) side channels, reproducing "Protecting
// Confidential Virtual Machines from Hardware Performance Counter Side
// Channels" (DSN 2024).
//
// Aegis runs in three stages:
//
//  1. Profile — run the protected application with its secrets in a
//     template VM, rank the processor's HPC events by the mutual
//     information they leak about the secrets (Application Profiler, §V).
//  2. Fuzz — search instruction gadgets (reset+trigger pairs) that
//     perturb each vulnerable event, confirm them, and reduce them to a
//     minimal covering set (Event Fuzzer, §VI).
//  3. Protect — deploy an in-VM obfuscator that injects the stacked
//     gadget segment with a differential-privacy-calibrated repetition
//     count per tick (Event Obfuscator, §VII), pinned to the same vCPU as
//     the protected application.
//
// The package orchestrates the internal subsystems: a micro-architecture
// simulator, an HPC/PMU model, an SEV host/guest world, generative
// workloads, and from-scratch ML attack models used for evaluation.
//
// A minimal deployment:
//
//	fw, _ := aegis.New(aegis.Config{Seed: 1})
//	app := &workload.WebsiteApp{}
//	profile, _ := fw.Profile(app)
//	gadgets, _ := fw.Fuzz(profile.Top(4))
//	obf, _ := fw.Protect(vm, 0, gadgets, aegis.MechanismLaplace, 1.0)
package aegis

import (
	"errors"
	"fmt"
	"strings"

	"github.com/repro/aegis/internal/artifact"
	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/fuzzer"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/ops"
	"github.com/repro/aegis/internal/profiler"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/workload"
)

// Facade metrics: pipeline-stage counters plus the multi-event skip
// signal of ProtectMulti.
var (
	mProfileRuns      = telemetry.C("aegis_profile_runs_total")
	mFuzzRuns         = telemetry.C("aegis_fuzz_runs_total")
	mProtectDeploys   = telemetry.C("aegis_protect_deploys_total")
	mMultiDeploys     = telemetry.C("aegis_protect_multi_deploys_total")
	mMultiSkipped     = telemetry.C("aegis_protect_multi_skipped_events_total")
	gProfileRanked    = telemetry.G("aegis_profile_events_ranked")
	gProfileRemaining = telemetry.G("aegis_profile_warmup_remaining")
	gFuzzCoverSize    = telemetry.G("aegis_fuzz_cover_size")
	gFuzzSegmentLen   = telemetry.G("aegis_fuzz_segment_len")
)

// Mechanism names accepted by NewDefense/Protect.
const (
	MechanismLaplace  = "laplace"
	MechanismDStar    = "dstar"
	MechanismRandom   = "random"   // §IX-A baseline, no privacy guarantee
	MechanismConstant = "constant" // §IX-A baseline, pad to a constant
)

// Errors returned by the facade.
var (
	ErrUnknownMechanism = errors.New("aegis: unknown mechanism")
	ErrNoGadgets        = errors.New("aegis: gadget set is empty")
	ErrUnknownEvent     = errors.New("aegis: event not in catalog")
)

// Config tunes the framework. The zero value selects the AMD EPYC 7252
// evaluation platform with moderate offline-analysis budgets.
type Config struct {
	// Processor selects the event catalog; empty means "AMD EPYC 7252".
	Processor string
	// Seed drives all stochastic behaviour; identical seeds reproduce
	// identical pipelines.
	Seed uint64
	// ProfileTraceTicks is the leakage-trace length for ranking.
	ProfileTraceTicks int
	// ProfileRepeats is the measurements per secret.
	ProfileRepeats int
	// FuzzCandidates is the gadget candidates sampled per event.
	FuzzCandidates int
	// ClipBound is the obfuscator's B_u per-tick noise clip.
	ClipBound float64
	// Sensitivity converts normalised DP sensitivity to event counts.
	Sensitivity float64
	// Parallelism bounds the worker pools of the offline pipelines
	// (profiling and fuzzing); <= 0 means GOMAXPROCS. Results are
	// byte-identical at any value — only wall-clock time changes.
	Parallelism int
	// ArtifactDir, when non-empty, backs the offline pipelines with a
	// versioned artifact store rooted at this directory: profiling and
	// fuzzing checkpoint their shards there and resume matching ones on
	// restart. Resume never changes results — a warm run is byte-identical
	// to a cold one, only faster.
	ArtifactDir string
	// Faults injects deterministic substrate faults (PMU read errors,
	// counter saturation, preemption bursts, mid-gadget interrupts, draw
	// extremes) into the fuzzer, the SEV world and the deployed
	// obfuscators. The zero value is the healthy substrate.
	Faults faultinject.Config
	// Ops configures the unified operations surface (/healthz, /readyz,
	// /metrics, /debug/pprof, /flight, /snapshot). With an empty
	// Ops.Addr no server is started; otherwise New starts it and
	// readiness opens once the first defense is deployed.
	Ops ops.Config
}

// Framework is a configured Aegis instance.
type Framework struct {
	cfg     Config
	catalog *hpc.Catalog
	legal   []isa.Variant
	faults  *faultinject.Injector
	store   *artifact.Store

	// Ops surface (nil server when Config.Ops.Addr is empty). warmGate
	// holds /readyz at 503 until the first Protect/ProtectMulti deploy.
	opsSrv   *ops.Server
	warmGate *ops.Gate
}

// New builds a framework for the configured processor.
func New(cfg Config) (*Framework, error) {
	if cfg.Processor == "" {
		cfg.Processor = "AMD EPYC 7252"
	}
	if cfg.ProfileTraceTicks <= 0 {
		cfg.ProfileTraceTicks = 120
	}
	if cfg.ProfileRepeats <= 0 {
		cfg.ProfileRepeats = 8
	}
	if cfg.FuzzCandidates <= 0 {
		cfg.FuzzCandidates = 600
	}
	if cfg.ClipBound <= 0 {
		cfg.ClipBound = 20000
	}
	if cfg.Sensitivity <= 0 {
		cfg.Sensitivity = 1500
	}
	catalog, err := hpc.CatalogByProcessor(cfg.Processor, 1)
	if err != nil {
		return nil, err
	}
	// The ISA specification follows the catalog's vendor.
	var clean isa.CleanupResult
	if catalog.Family == "intel-e5" {
		clean = isa.Cleanup(isa.SpecIntelXeonE5(1), isa.IntelXeonE5Features())
	} else {
		clean = isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures())
	}
	telemetry.G("aegis_config_fuzz_candidates").Set(float64(cfg.FuzzCandidates))
	telemetry.G("aegis_config_profile_trace_ticks").Set(float64(cfg.ProfileTraceTicks))
	telemetry.G("aegis_config_profile_repeats").Set(float64(cfg.ProfileRepeats))
	telemetry.G("aegis_config_clip_bound").Set(cfg.ClipBound)
	telemetry.G("aegis_config_sensitivity").Set(cfg.Sensitivity)
	telemetry.G("aegis_catalog_events").Set(float64(catalog.Size()))
	telemetry.G("aegis_legal_instructions").Set(float64(len(clean.Legal)))
	f := &Framework{
		cfg:      cfg,
		catalog:  catalog,
		legal:    clean.Legal,
		faults:   faultinject.New(cfg.Faults),
		warmGate: ops.NewGate("plan-warmup"),
	}
	if cfg.ArtifactDir != "" {
		store, err := artifact.Open(cfg.ArtifactDir)
		if err != nil {
			return nil, fmt.Errorf("open artifact store: %w", err)
		}
		f.store = store
	}
	if cfg.Ops.Addr != "" {
		opsCfg := cfg.Ops
		if opsCfg.Budget == nil {
			// Default tracker: the paper's <2% ceiling, fed continuously
			// from the injected-instruction and vCPU-capacity counters.
			opsCfg.Budget = ops.NewOverheadBudget(0)
			reg := opsCfg.Registry
			if reg == nil {
				reg = telemetry.Default()
			}
			opsCfg.Budget.SetSource(ops.TelemetrySource(reg))
		}
		f.opsSrv = ops.NewServer(opsCfg)
		f.opsSrv.RegisterReadiness(f.warmGate.Probe())
		f.opsSrv.RegisterHealth(ops.Probe{Name: "catalog", Check: func() ops.ProbeResult {
			return ops.OK(fmt.Sprintf("%s: %d events", cfg.Processor, catalog.Size()))
		}})
		if _, err := f.opsSrv.Start(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// OpsServer returns the running ops server, or nil when Config.Ops.Addr
// was empty. Callers register component probes on it (aegisctl adds
// hpc/sev/obfuscator probes around its pipeline).
func (f *Framework) OpsServer() *ops.Server { return f.opsSrv }

// Close stops the ops server (if any). The framework itself holds no
// other resources.
func (f *Framework) Close() error {
	if f.opsSrv == nil {
		return nil
	}
	return f.opsSrv.Close()
}

// Catalog returns the processor's HPC event catalog.
func (f *Framework) Catalog() *hpc.Catalog { return f.catalog }

// FaultInjector returns the framework's fault injector, or nil when the
// substrate is healthy. Attach it to an sev.World with World.SetFaults to
// expose deployed defenses to preemption and mid-gadget interrupts.
func (f *Framework) FaultInjector() *faultinject.Injector { return f.faults }

// LegalInstructions returns the number of instruction variants that
// survive ISA cleanup on this processor.
func (f *Framework) LegalInstructions() int { return len(f.legal) }

// Profile is the result of the Application Profiler stage.
type Profile struct {
	// TotalEvents is the catalog size M.
	TotalEvents int
	// WarmupRemaining is N, the events responding to the application.
	WarmupRemaining int
	// Ranked lists the surviving events by descending mutual information.
	Ranked []profiler.RankedEvent
}

// Top returns the names of the n most vulnerable events; n is clamped to
// [0, len(Ranked)].
func (p *Profile) Top(n int) []string {
	if n < 0 {
		n = 0
	}
	if n > len(p.Ranked) {
		n = len(p.Ranked)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = p.Ranked[i].Event.Name
	}
	return out
}

// Profile runs warm-up profiling and event ranking for the application.
func (f *Framework) Profile(app workload.App) (*Profile, error) {
	span := telemetry.StartSpan("aegis.profile")
	defer span.End()
	mProfileRuns.Inc()
	pcfg := profiler.DefaultConfig(f.cfg.Seed)
	pcfg.TraceTicks = f.cfg.ProfileTraceTicks
	pcfg.RankRepeats = f.cfg.ProfileRepeats
	pcfg.Parallelism = f.cfg.Parallelism
	pcfg.Store = f.store
	p := profiler.New(f.catalog, pcfg)
	res, err := p.Profile(app)
	if err != nil {
		return nil, fmt.Errorf("profile %s: %w", app.Name(), err)
	}
	gProfileRemaining.Set(float64(len(res.Warmup.Remaining)))
	gProfileRanked.Set(float64(len(res.Ranked)))
	return &Profile{
		TotalEvents:     res.Warmup.TotalEvents,
		WarmupRemaining: len(res.Warmup.Remaining),
		Ranked:          res.Ranked,
	}, nil
}

// ArtifactInventory returns every artifact fingerprint the framework's
// current configuration would consult when profiling app and fuzzing any
// of the catalog's events, mapped to human-readable labels. Inspection
// tools (aegisctl -artifacts) diff a store's entries against this set:
// an entry whose fingerprint is absent can never be loaded by this
// configuration — it is stale, left over from other flags.
func (f *Framework) ArtifactInventory(app workload.App) (map[string]string, error) {
	pcfg := profiler.DefaultConfig(f.cfg.Seed)
	pcfg.TraceTicks = f.cfg.ProfileTraceTicks
	pcfg.RankRepeats = f.cfg.ProfileRepeats
	pcfg.Parallelism = f.cfg.Parallelism
	out := profiler.New(f.catalog, pcfg).ArtifactUniverse(app)
	fcfg := fuzzer.DefaultConfig(f.cfg.Seed)
	fcfg.CandidatesPerEvent = f.cfg.FuzzCandidates
	fcfg.Faults = f.cfg.Faults
	fz, err := fuzzer.New(f.legal, fcfg)
	if err != nil {
		return nil, err
	}
	for fp, label := range fz.ArtifactUniverse(f.catalog.Events) {
		out[fp] = label
	}
	return out, nil
}

// GadgetSet is the result of the Event Fuzzer stage: a minimal covering
// set of confirmed gadgets stacked into one injectable code segment.
type GadgetSet struct {
	// Events are the protected event names.
	Events []string
	// CoverSize is the number of gadgets in the minimal cover.
	CoverSize int
	// SegmentLen is the stacked segment's instruction count.
	SegmentLen int
	// GadgetsTried is the number of candidate executions.
	GadgetsTried int

	segment  []isa.Variant
	refEvent *hpc.Event
	// perEventBest maps each protected event to its strongest confirmed
	// gadget sequence, used by multi-event deployments.
	perEventBest map[string][]isa.Variant
}

// Fuzz searches and confirms gadgets for the named events and reduces
// them to a minimal cover.
func (f *Framework) Fuzz(eventNames []string) (*GadgetSet, error) {
	if len(eventNames) == 0 {
		return nil, fuzzer.ErrNoTargetEvents
	}
	span := telemetry.StartSpan("aegis.fuzz")
	defer span.End()
	mFuzzRuns.Inc()
	events := make([]*hpc.Event, 0, len(eventNames))
	for _, n := range eventNames {
		e, ok := f.catalog.ByName(n)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownEvent, n)
		}
		events = append(events, e)
	}
	fcfg := fuzzer.DefaultConfig(f.cfg.Seed)
	fcfg.CandidatesPerEvent = f.cfg.FuzzCandidates
	fcfg.Parallelism = f.cfg.Parallelism
	fcfg.Faults = f.cfg.Faults
	fcfg.Store = f.store
	fz, err := fuzzer.New(f.legal, fcfg)
	if err != nil {
		return nil, err
	}
	// A partial campaign (some events skipped, findings for the rest) is
	// still deployable — mirror ProtectMulti and continue with what
	// succeeded; fail only when the fuzzer had nothing to report.
	res, err := fz.Fuzz(events)
	if err != nil && res == nil {
		return nil, err
	}
	cover, err := fz.MinimalCover(res, events)
	if err != nil {
		return nil, err
	}
	segment := fuzzer.StackSegment(cover)
	if len(segment) == 0 {
		return nil, ErrNoGadgets
	}
	gFuzzCoverSize.Set(float64(len(cover)))
	gFuzzSegmentLen.Set(float64(len(segment)))
	ref := events[0]
	perEvent := make(map[string][]isa.Variant, len(eventNames))
	for name, best := range res.Best {
		perEvent[name] = best.Gadget.Sequence()
	}
	return &GadgetSet{
		Events:       eventNames,
		CoverSize:    len(cover),
		SegmentLen:   len(segment),
		GadgetsTried: res.CandidatesTried,
		segment:      segment,
		refEvent:     ref,
		perEventBest: perEvent,
	}, nil
}

// Segment returns the stacked injectable code segment — the shared
// protection plan handed to daemon.Config for multi-tenant deployments.
func (gs *GadgetSet) Segment() []isa.Variant { return gs.segment }

// RefEvent returns the reference HPC event the plan was fuzzed against.
func (gs *GadgetSet) RefEvent() *hpc.Event { return gs.refEvent }

// DefenseFactory builds fresh obfuscator instances (one per deployment).
type DefenseFactory func(seed uint64) (*obfuscator.Obfuscator, error)

// NewDefense returns a factory producing obfuscators for the gadget set
// under the named mechanism. For the DP mechanisms param is ε; for the
// baselines it is the noise bound / padding peak.
func (f *Framework) NewDefense(gs *GadgetSet, mechanism string, param float64) (DefenseFactory, error) {
	if gs == nil || len(gs.segment) == 0 {
		return nil, ErrNoGadgets
	}
	switch mechanism {
	case MechanismLaplace, MechanismDStar, MechanismRandom, MechanismConstant:
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownMechanism, mechanism)
	}
	cfg := f.cfg
	return func(seed uint64) (*obfuscator.Obfuscator, error) {
		r := rng.New(seed).Split("aegis-defense")
		var (
			mech obfuscator.Mechanism
			err  error
		)
		switch mechanism {
		case MechanismLaplace:
			mech, err = obfuscator.NewLaplaceMechanism(param, cfg.Sensitivity, r)
		case MechanismDStar:
			mech, err = obfuscator.NewDStarMechanism(param, cfg.Sensitivity, r)
		case MechanismRandom:
			mech, err = obfuscator.NewRandomNoiseMechanism(param, r)
		case MechanismConstant:
			mech, err = obfuscator.NewConstantOutputMechanism(param)
		default:
			return nil, fmt.Errorf("%w: %q", ErrUnknownMechanism, mechanism)
		}
		if err != nil {
			return nil, err
		}
		return obfuscator.New(obfuscator.Config{
			Mechanism: mech,
			Segment:   gs.segment,
			RefEvent:  gs.refEvent,
			ClipBound: cfg.ClipBound,
			Seed:      seed,
			Faults:    cfg.Faults,
		})
	}, nil
}

// MultiResult is the outcome of a multi-event deployment: the deployed
// obfuscator plus the events that could not be protected.
type MultiResult struct {
	// Multi is the deployed multi-event obfuscator.
	Multi *obfuscator.MultiObfuscator
	// ProtectedEvents are the events that received their own d* plan.
	ProtectedEvents []string
	// SkippedEvents are the requested events with no confirmed gadget;
	// they remain UNPROTECTED and callers should surface them.
	SkippedEvents []string
}

// ProtectMulti deploys the multi-event reinforcement the paper recommends
// the d* mechanism for (§VII-B): each protected event gets its own d*
// recursion and its own strongest gadget sequence, all pinned to the
// application's vCPU. Events for which fuzzing confirmed no gadget are
// reported in the result's SkippedEvents (and counted in telemetry); if
// every requested event would be skipped, ProtectMulti fails instead of
// silently deploying nothing.
func (f *Framework) ProtectMulti(vm *sev.VM, vcpu int, gs *GadgetSet, epsilon float64) (*MultiResult, error) {
	if gs == nil || len(gs.perEventBest) == 0 {
		return nil, ErrNoGadgets
	}
	span := telemetry.StartSpan("aegis.protect_multi")
	defer span.End()
	plans := make([]obfuscator.Plan, 0, len(gs.Events))
	result := &MultiResult{}
	for i, name := range gs.Events {
		seg, ok := gs.perEventBest[name]
		if !ok {
			// No confirmed gadget for this event: it stays unprotected.
			mMultiSkipped.Inc()
			telemetry.Log().Warn("protect-multi: event skipped, no confirmed gadget",
				telemetry.F("event", name))
			result.SkippedEvents = append(result.SkippedEvents, name)
			continue
		}
		ev, ok := f.catalog.ByName(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownEvent, name)
		}
		mech, err := obfuscator.NewDStarMechanism(epsilon, f.cfg.Sensitivity,
			rng.New(f.cfg.Seed).SplitN("multi-defense", i))
		if err != nil {
			return nil, err
		}
		plans = append(plans, obfuscator.Plan{
			Mechanism: mech,
			Segment:   seg,
			Event:     ev,
			ClipBound: f.cfg.ClipBound,
		})
		result.ProtectedEvents = append(result.ProtectedEvents, name)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("%w: no confirmed gadget for any requested event (skipped: %s)",
			ErrNoGadgets, strings.Join(result.SkippedEvents, ", "))
	}
	multi, err := obfuscator.NewMulti(plans)
	if err != nil {
		return nil, err
	}
	multi.SetFaults(f.faults)
	if err := vm.AddProcess(vcpu, multi); err != nil {
		return nil, err
	}
	mMultiDeploys.Inc()
	f.warmGate.Open()
	result.Multi = multi
	return result, nil
}

// Protect deploys an obfuscator into the VM, pinned to the given vCPU —
// the same vCPU the protected application runs on, so the hypervisor
// cannot schedule them apart (§VII-C).
func (f *Framework) Protect(vm *sev.VM, vcpu int, gs *GadgetSet, mechanism string, param float64) (*obfuscator.Obfuscator, error) {
	span := telemetry.StartSpan("aegis.protect")
	defer span.End()
	factory, err := f.NewDefense(gs, mechanism, param)
	if err != nil {
		return nil, err
	}
	obf, err := factory(f.cfg.Seed ^ rng.HashString(mechanism))
	if err != nil {
		return nil, err
	}
	if err := vm.AddProcess(vcpu, obf); err != nil {
		return nil, err
	}
	mProtectDeploys.Inc()
	f.warmGate.Open()
	return obf, nil
}
