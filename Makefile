GO ?= go

.PHONY: build test vet race fmt-check check bench

# Pre-PR gate: everything `make check` runs must pass before a PR ships
# (see ROADMAP.md "Engineering gates").
check: build vet fmt-check test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
