GO ?= go

# Bench trajectory settings: the JSON the harness emits and the committed
# baseline bench-check compares against (latest BENCH_*.json by default).
# The run covers the full matrix GOMAXPROCS in {1, 4, NumCPU} (duplicates
# collapse on small hosts) x parallelism in {1, 4}, measures the
# internal/benchkit kernels per GOMAXPROCS value, and commits the
# multi-core scaling floors bench-check gates on hosts with >= 4 CPUs.
BENCH_JSON ?= BENCH_$(shell date +%F).json
BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
BENCH_ARGS ?= -scale eval -seed 1 -only table2,table3 -parallelism 1,4 -gomaxprocs 1,4,0 -scaling-floors table2=1.5,table3=1.5 -telemetry=false

# Native Go fuzzing budget per target; `make check` runs a short smoke pass,
# raise FUZZTIME for a longer campaign (e.g. make fuzz FUZZTIME=60s).
FUZZTIME ?= 5s

# Coverage floor for the observability layer (internal/telemetry/... and
# internal/ops): the flight recorder and the ops surface are the tools an
# operator reaches for mid-incident, so their test coverage is gated.
COVER_FLOOR ?= 85

.PHONY: build test vet lint lint-sarif lint-audit race fmt-check check fuzz bench bench-alloc bench-json bench-check cover e2e

# Pre-PR gate: everything `make check` runs must pass before a PR ships
# (see ROADMAP.md "Engineering gates").
check: build vet fmt-check lint test bench-alloc race fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Daemon end-to-end suite, run by name for a focused signal: deterministic
# journal replay across parallelism levels, 100+-tenant scale, the
# fault-injected soak, and the aegisd/aegisctl HTTP smoke tests. All of it
# also runs inside `make test` / `make race`.
e2e:
	$(GO) test -count=1 -v -run 'TestScenario|TestSheds|TestFaultSoak|TestDaemonConcurrentLifecycle' ./internal/daemon/...
	$(GO) test -count=1 -run 'TestDaemonSmoke|TestCtlClientSmoke' ./cmd/aegisd/ ./cmd/aegisctl/

vet:
	$(GO) vet ./...

# Race instrumentation slows the end-to-end experiment suites well past
# Go's default 10-minute per-package timeout; give them headroom.
race:
	$(GO) test -race -timeout 30m ./...

# Project-specific static analysis (exit 0 clean / 1 findings / 2 load
# error). Rules and the //aegis:allow suppression contract are documented
# in DESIGN.md "Mechanically enforced invariants". Per-package results are
# cached as lint-result artifacts in lint.aegis-artifact/ (gitignored), so
# a warm run re-analyzes only packages whose import-closure file contents
# changed.
lint:
	$(GO) run ./cmd/aegis-lint -cache ./...

# Same lint run rendered as SARIF 2.1.0 for GitHub code-scanning upload.
# The file is written even when findings exist; the lint exit status is
# preserved so the target still fails a dirty tree.
lint-sarif:
	@$(GO) run ./cmd/aegis-lint -sarif ./... > aegis-lint.sarif; \
	status=$$?; echo "lint-sarif: wrote aegis-lint.sarif"; exit $$status

# Machine-readable inventory of every //aegis:allow suppression: rule,
# position, reason, and whether it still suppresses or prunes anything.
lint-audit:
	$(GO) run ./cmd/aegis-lint -audit ./...

# gofmt over the same file walk the linter uses, so intentionally broken
# fixtures under testdata/ are skipped by both.
fmt-check:
	$(GO) run ./cmd/aegis-lint -gofmt

# Coverage-guided fuzzing of the DP mechanisms and the faulted tick loop.
fuzz:
	$(GO) test ./internal/obfuscator/ -run='^$$' -fuzz=FuzzMechanismDraw -fuzztime $(FUZZTIME)
	$(GO) test ./internal/faultinject/proptest/ -run='^$$' -fuzz=FuzzTickUnderFaults -fuzztime $(FUZZTIME)

bench: bench-json
	$(GO) test -bench=. -benchmem -run=^$$ .

# Allocation gates: assert the steady-state hot paths (RDPMC, World.Step,
# obfuscator tick, stats scratch kernels) stay at 0 allocs/op. The gates
# are excluded under -race (instrumentation allocates), so `make race`
# still covers the same code for data races.
bench-alloc:
	$(GO) test -run 'TestZeroAlloc' -count=1 -v .

# Coverage gate on the observability layer: fails when total statement
# coverage across internal/telemetry/... + internal/ops drops below
# COVER_FLOOR percent.
cover:
	$(GO) test -coverprofile=cover.out ./internal/telemetry/... ./internal/ops/
	@$(GO) tool cover -func=cover.out | tail -1
	@pct=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$NF}' | tr -d '%'); \
	ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{print (p+0 >= f+0) ? 1 : 0}'); \
	if [ "$$ok" != "1" ]; then \
		echo "cover: observability coverage $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; \
	fi

# Run the GOMAXPROCS x parallelism trajectory matrix and record
# wall-clock/throughput plus per-kernel ns/op and allocs/op.
bench-json:
	$(GO) run ./cmd/aegis-bench $(BENCH_ARGS) -bench-json $(BENCH_JSON)

# Re-run the matrix and fail on >20% per-experiment or per-kernel
# regressions, allocs/op increases, or (on hosts with >= 4 CPUs)
# trajectory speedups below the baseline's committed scaling floors.
bench-check:
	@if [ -z "$(BASELINE)" ]; then echo "bench-check: no BENCH_*.json baseline found"; exit 1; fi
	$(GO) run ./cmd/aegis-bench $(BENCH_ARGS) -bench-check $(BASELINE)
